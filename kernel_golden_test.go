package plurality

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file pins the event-kernel refactor: the typed, zero-allocation
// kernel must produce byte-identical Results to the closure-heap kernel it
// replaced. The digests below were recorded on the pre-refactor kernel
// (commit 85af9cc) for every registered protocol crossed with the three
// reference topologies; any change to event ordering, RNG draw order or
// engine arithmetic shows up as a digest mismatch.
//
// To re-record after an intentional, reviewed behaviour change:
//
//	PLURALITY_GOLDEN_RECORD=1 go test -run TestKernelGolden -v .

// digestResult folds every field of a Result — including the full
// trajectory and the protocol-specific stats — into a SHA-256 digest.
// Floats are rendered in hex ('x') form, so two Results digest equal iff
// they are bit-identical.
func digestResult(res *Result) string {
	h := sha256.New()
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	fmt.Fprintf(h, "winner=%d pwon=%t full=%t ct=%s eps=%t et=%s e=%s dur=%s to=%t\n",
		res.Winner, res.PluralityWon, res.FullConsensus, hx(res.ConsensusTime),
		res.EpsReached, hx(res.EpsTime), hx(res.Eps), hx(res.Duration), res.TimedOut)
	fmt.Fprintf(h, "counts=%v\n", res.FinalCounts)
	for _, p := range res.Trajectory {
		fmt.Fprintf(h, "p %s %s %s %s %d\n",
			hx(p.Time), hx(p.TopFrac), hx(p.PluralityFrac), hx(p.Bias), p.MaxGen)
	}
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "s %s=%s\n", k, hx(res.Stats[k]))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenTopologies are the three reference interaction graphs of the
// equivalence matrix. GraphSeed is pinned so the random-regular graph is
// identical no matter how the run seed is derived.
var goldenTopologies = []TopologySpec{
	{Kind: TopologyComplete},
	{Kind: TopologyTorus},
	{Kind: TopologyRandomRegular, Degree: 4, GraphSeed: 3},
}

// goldenSpec is the shared instance: large enough that every protocol phase
// (clustering, generations, propagation tails) actually runs, small enough
// that the full 7x3 matrix stays in test-suite budget.
func kernelGoldenSpec(tp TopologySpec) Spec {
	return Spec{N: 600, K: 3, Alpha: 2.5, Seed: 7, Topology: tp}
}

// kernelGolden maps "protocol/topology-label" to the pre-refactor digest.
var kernelGolden = map[string]string{
	"3-majority/complete":                 "992ed5c605d38e2c3ea43e72a08eddb6c5bd00fb1db9f9d79fffecd315c23c83",
	"3-majority/random-regular(d=4)":      "be3712502dde1f907bbb1778da9ab326cc71650775c450f06636a246d76c0c34",
	"3-majority/torus(24x25)":             "e176f59095e4c57b5ae87b8d0d7344af9ddd9bb6ffea9c613ca7a6ec0652cf7d",
	"decentralized/complete":              "a0291b5cb28d0a43785ae8fb52321074599816b34a1638f2ed84c5aa81ffb1e2",
	"decentralized/random-regular(d=4)":   "fab080e1a31abd7a155ef97db2b4214eccd4e5b1e5b1036cdd5284732115ea93",
	"decentralized/torus(24x25)":          "fb5b36fcc8d0f7ae3bff69a79f99a5cf03bfd9d39680ba185cd7cd8b7d9df8c5",
	"leader/complete":                     "df62bdcaa2fb0aa083932b04441b633739f49dffac0e139bc48cde1cfb30e9dc",
	"leader/random-regular(d=4)":          "ea7e05344b065d341ffb8f66293c6a58338cdcd324dc49448a8afff562d67225",
	"leader/torus(24x25)":                 "abd7a485d6fee181898f465862bdd20f5d523619e34e20a9195dc91b27c80934",
	"pull-voting/complete":                "8dfd1d68305755fd34a6c9d4ccd3218fb00ff1d48b20923dc27cd1ac22abb206",
	"pull-voting/random-regular(d=4)":     "8a614c6116bce8e2e684bced311a2c86e9a6e5036e0e921b7052b94221cd1d8b",
	"pull-voting/torus(24x25)":            "eeef76668d13374243d0f0d0f26f80f06fa0c05aeafb9480a1f4e5dbdfcc0c0f",
	"sync/complete":                       "ecb267618f110637f3ae0eea726abf505183f7fb4bd6aba586cd77528ebf718e",
	"sync/random-regular(d=4)":            "2669a4783e0a26962b75aba42601c79d96db4f131b737882c29eab47f697229e",
	"sync/torus(24x25)":                   "cd2bb4284733d82657911ef2c78f81c37521872792df8b2283c190edc035357c",
	"two-choices/complete":                "628021f8f8fbf377d9077b8e749662a5ee3236fb41c765f24c9bcc778bb6bf2c",
	"two-choices/random-regular(d=4)":     "4cd9bceb4dcc56be27a74803e91fc09341b4dc59a8424b1506979a761e1fe54c",
	"two-choices/torus(24x25)":            "6eeb839b5f7e372bb56dbc7f24764999ede8edf05a657cb4b330c44bc3ba0762",
	"undecided-state/complete":            "29a1291680315ffa4d41f89876252809d19911dba883db25621fdbe7e196e910",
	"undecided-state/random-regular(d=4)": "bdd5b344543f16a14d298b508c25b76a3d49fa4245d824f08dbb47b97e60ddd2",
	"undecided-state/torus(24x25)":        "1522f4111651cef470b89c6378f3444234504e87578fc184708fbb3b1d2367e4",
}

// TestSnapshotRoundtrip pins the checkpoint subsystem's core guarantee on
// the same 7×3 matrix the kernel digests cover: for every protocol and
// reference topology, run-to-T and run-to-T/2 → snapshot → encode → decode
// → restore → run-to-T produce bit-identical Results (hex-float digest
// equality), including when the resumed half executes under RunBatchFrom
// with ≥ 2 workers. Because the plain run's digest is itself pinned by
// TestKernelGolden, this transitively anchors resumed trajectories to the
// pre-refactor kernel.
//
// Set PLURALITY_ROUNDTRIP_DIGESTS=<file> to dump the per-cell digests (the
// CI docs job uploads them as an artifact).
func TestSnapshotRoundtrip(t *testing.T) {
	var digests []string
	for _, name := range Protocols() {
		for _, tp := range goldenTopologies {
			spec := kernelGoldenSpec(tp)
			key := fmt.Sprintf("%s/%s", name, tp.ResolvedLabel(spec.N))
			t.Run(key, func(t *testing.T) {
				if testing.Short() && tp.Kind != TopologyComplete {
					t.Skip("sparse-topology roundtrip column skipped in -short mode")
				}
				ctx := context.Background()
				plain, err := Run(ctx, name, spec)
				if err != nil {
					t.Fatalf("Run(%s): %v", key, err)
				}
				want := digestResult(plain)
				if plain.Duration <= 0 {
					t.Fatalf("%s: zero-duration run cannot be checkpointed half way", key)
				}

				// Half run with a halting snapshot at T/2.
				cspec := spec
				cspec.Checkpoint = CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
				half, err := Run(ctx, name, cspec)
				if err != nil {
					t.Fatalf("Run(%s) with checkpoint: %v", key, err)
				}
				if half.Snapshot == nil {
					t.Fatalf("%s: no snapshot captured at t=%g of %g", key, plain.Duration/2, plain.Duration)
				}
				meta := half.Snapshot.Meta()
				if meta.Protocol != name || meta.FormatVersion != SnapshotFormatVersion {
					t.Fatalf("%s: bad snapshot meta %+v", key, meta)
				}

				// Through the wire format: encode, decode, resume.
				blob, err := half.Snapshot.Encode()
				if err != nil {
					t.Fatal(err)
				}
				sn, err := DecodeSnapshot(blob)
				if err != nil {
					t.Fatalf("%s: decode: %v", key, err)
				}
				res, err := Resume(ctx, sn, nil)
				if err != nil {
					t.Fatalf("%s: resume: %v", key, err)
				}
				if got := digestResult(res); got != want {
					t.Errorf("%s: resumed digest %s != uninterrupted %s", key, got, want)
				}

				// The batch leg: the exact continuation (replication 0) must
				// survive the parallel pool with ≥ 2 workers.
				batch, err := RunBatchFrom(ctx, sn, 2, 2)
				if err != nil {
					t.Fatalf("%s: RunBatchFrom: %v", key, err)
				}
				if got := digestResult(batch[0]); got != want {
					t.Errorf("%s: batch-resumed digest %s != uninterrupted %s", key, got, want)
				}
				digests = append(digests, fmt.Sprintf("%s\t%s", key, want))
			})
		}
	}
	if out := os.Getenv("PLURALITY_ROUNDTRIP_DIGESTS"); out != "" && !t.Failed() {
		sort.Strings(digests)
		body := strings.Join(digests, "\n") + "\n"
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			t.Errorf("writing digest artifact: %v", err)
		}
	}
}

// TestKernelGolden runs every registered protocol on every reference
// topology and compares the Result digest against the pre-refactor record.
func TestKernelGolden(t *testing.T) {
	record := os.Getenv("PLURALITY_GOLDEN_RECORD") != ""
	for _, name := range Protocols() {
		for _, tp := range goldenTopologies {
			spec := kernelGoldenSpec(tp)
			key := fmt.Sprintf("%s/%s", name, tp.ResolvedLabel(spec.N))
			t.Run(key, func(t *testing.T) {
				if testing.Short() && tp.Kind != TopologyComplete && !record {
					// The sparse-graph columns multiply the runtime ~10×
					// (diffusion is slower off the clique); -short keeps the
					// complete-graph column, the full matrix runs in the
					// plain suite.
					t.Skip("sparse-topology golden column skipped in -short mode")
				}
				res, err := Run(context.Background(), name, spec)
				if err != nil {
					t.Fatalf("Run(%s): %v", key, err)
				}
				got := digestResult(res)
				if record {
					fmt.Printf("GOLDEN\t%q: %q,\n", key, got)
					return
				}
				want, ok := kernelGolden[key]
				if !ok {
					t.Fatalf("no golden digest recorded for %s (got %s)", key, got)
				}
				if got != want {
					t.Errorf("kernel digest changed for %s:\n  got  %s\n  want %s\nthe refactored kernel no longer reproduces the closure-kernel run byte-for-byte", key, got, want)
				}
			})
		}
	}
}
