package plurality

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestCanonicalBytesVersionTagged pins the encoding's self-description: the
// magic and format version lead the bytes, so a future layout change (with
// its version bump) can never collide with today's keys.
func TestCanonicalBytesVersionTagged(t *testing.T) {
	b, err := Spec{N: 100, K: 2, Seed: 1}.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte(canonicalSpecMagic)) {
		t.Fatalf("encoding does not start with %q: % x", canonicalSpecMagic, b[:16])
	}
	if got := int(b[len(canonicalSpecMagic)]) | int(b[len(canonicalSpecMagic)+1])<<8; got != canonicalSpecVersion {
		t.Fatalf("encoded version %d, want %d", got, canonicalSpecVersion)
	}
}

// TestCanonicalBytesFieldOrderInvariant decodes the same spec from two JSON
// documents with shuffled field order and checks the keys agree — the wire
// representation's field order must not leak into the identity.
func TestCanonicalBytesFieldOrderInvariant(t *testing.T) {
	docA := `{"n": 500, "k": 4, "alpha": 2, "seed": 9,
		"topology": {"kind": "ring", "width": 2},
		"adversary": {"kind": "crash", "fraction": 0.2},
		"latency": {"mean": 1.5, "kind": "exp"}}`
	docB := `{"latency": {"kind": "exp", "mean": 1.5},
		"adversary": {"fraction": 0.2, "kind": "crash"},
		"topology": {"width": 2, "kind": "ring"},
		"seed": 9, "alpha": 2, "k": 4, "n": 500}`
	var a, b Spec
	if err := json.Unmarshal([]byte(docA), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(docB), &b); err != nil {
		t.Fatal(err)
	}
	ka, err := a.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatalf("reordered JSON documents produced different keys:\n% x\n% x", ka, kb)
	}
}

// TestCanonicalBytesDefaultFilling checks that spelling an engine default
// explicitly cannot change the key: each pair below is the same run twice,
// once with the knob left zero and once with the documented default written
// out.
func TestCanonicalBytesDefaultFilling(t *testing.T) {
	base := Spec{N: 900, K: 3, Seed: 5}
	pairs := []struct {
		name           string
		implicit, expl Spec
	}{
		{"alpha", base, func() Spec { s := base; s.Alpha = 1; return s }()},
		{"latency", base, func() Spec {
			s := base
			s.Latency = LatencySpec{Kind: "exp", Mean: 1}
			return s
		}()},
		{"topology-complete", base, func() Spec {
			s := base
			s.Topology = TopologySpec{Kind: TopologyComplete}
			return s
		}()},
		{"topology-torus-dims", func() Spec {
			s := base
			s.Topology = TopologySpec{Kind: TopologyTorus}
			return s
		}(), func() Spec {
			s := base
			s.Topology = TopologySpec{Kind: TopologyTorus, Rows: 30, Cols: 30}
			return s
		}()},
		{"topology-ring-width", func() Spec {
			s := base
			s.Topology = TopologySpec{Kind: TopologyRing}
			return s
		}(), func() Spec {
			s := base
			s.Topology = TopologySpec{Kind: TopologyRing, Width: 1, Degree: 7}
			return s
		}()},
		{"gamma", base, func() Spec { s := base; s.Sync.Gamma = 0.5; return s }()},
		{"adversary-fraction", func() Spec {
			s := base
			s.Adversary = AdversarySpec{Kind: AdversaryCrash}
			return s
		}(), func() Spec {
			s := base
			s.Adversary = AdversarySpec{Kind: AdversaryCrash, Fraction: 0.1}
			return s
		}()},
		{"adversary-delay-rate", func() Spec {
			s := base
			s.Adversary = AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5}
			return s
		}(), func() Spec {
			s := base
			s.Adversary = AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5, Rate: 1}
			return s
		}()},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			ka, err := p.implicit.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			kb, err := p.expl.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ka, kb) {
				t.Fatalf("implicit and explicit defaults keyed differently")
			}
		})
	}
}

// TestCanonicalBytesDistinguishes is the other half of the identity: every
// result-affecting field must move the key.
func TestCanonicalBytesDistinguishes(t *testing.T) {
	base := Spec{N: 900, K: 3, Seed: 5}
	variants := map[string]Spec{
		"n":        {N: 901, K: 3, Seed: 5},
		"k":        {N: 900, K: 4, Seed: 5},
		"seed":     {N: 900, K: 3, Seed: 6},
		"alpha":    {N: 900, K: 3, Seed: 5, Alpha: 2},
		"eps":      {N: 900, K: 3, Seed: 5, Eps: 0.01},
		"maxtime":  {N: 900, K: 3, Seed: 5, MaxTime: 40},
		"topology": {N: 900, K: 3, Seed: 5, Topology: TopologySpec{Kind: TopologyRing}},
		"adv":      {N: 900, K: 3, Seed: 5, Adversary: AdversarySpec{Kind: AdversaryDrop}},
		"discard":  {N: 900, K: 3, Seed: 5, DiscardTrajectory: true},
		"halt":     {N: 900, K: 3, Seed: 5, Checkpoint: CheckpointSpec{SnapshotAt: 3, Halt: true}},
	}
	kb, err := base.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{string(kb): "base"}
	for name, s := range variants {
		k, err := s.CanonicalBytes()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[string(k)]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[string(k)] = name
	}
}

// TestCanonicalBytesInvalidSpec checks that unrunnable specs have no key.
func TestCanonicalBytesInvalidSpec(t *testing.T) {
	if _, err := (Spec{N: 1, K: 2}).CanonicalBytes(); err == nil {
		t.Fatal("want validation error for N=1")
	}
	if _, err := (Spec{N: 10, K: 2, Alpha: 0.5}).CanonicalBytes(); err == nil {
		t.Fatal("want validation error for Alpha in (0,1)")
	}
}

// TestCanonicalKeyEqualImpliesDigestEqual is the guarantee the result cache
// stands on: any two Specs with equal canonical keys must produce equal
// golden digests when run. Each pair spells the same run two ways (implicit
// vs explicit defaults); the digests compare the complete Results.
func TestCanonicalKeyEqualImpliesDigestEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	type pair struct {
		protocol string
		a, b     Spec
	}
	pairs := []pair{
		{"sync",
			Spec{N: 400, K: 3, Seed: 11},
			Spec{N: 400, K: 3, Seed: 11, Alpha: 1, Sync: SyncOptions{Gamma: 0.5}}},
		{"leader",
			Spec{N: 300, K: 3, Alpha: 2, Seed: 7},
			Spec{N: 300, K: 3, Alpha: 2, Seed: 7, Latency: LatencySpec{Kind: "exp", Mean: 1}}},
		{"3-majority",
			Spec{N: 600, K: 4, Alpha: 2, Seed: 3, Topology: TopologySpec{Kind: TopologyTorus}},
			Spec{N: 600, K: 4, Alpha: 2, Seed: 3, Topology: TopologySpec{Kind: TopologyTorus, Rows: 24, Cols: 25}}},
	}
	ctx := context.Background()
	for _, p := range pairs {
		t.Run(p.protocol, func(t *testing.T) {
			ka, err := p.a.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			kb, err := p.b.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ka, kb) {
				t.Fatal("pair does not share a canonical key; the test premise is broken")
			}
			ra, err := Run(ctx, p.protocol, p.a)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := Run(ctx, p.protocol, p.b)
			if err != nil {
				t.Fatal(err)
			}
			if da, db := digestResult(ra), digestResult(rb); da != db {
				t.Fatalf("equal keys, unequal digests: %s vs %s", da, db)
			}
		})
	}
}

// TestCanonicalBytesExcludesShards pins the execution-knob contract: shard
// count is how much hardware one run uses, not which experiment it is, so
// specs differing only in Shards share one canonical encoding (and therefore
// one cache key in the serving layer).
func TestCanonicalBytesExcludesShards(t *testing.T) {
	base := Spec{N: 4000, K: 3, Alpha: 2, Seed: 7}
	ref, err := base.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8, 64} {
		s := base
		s.Shards = shards
		b, err := s.CanonicalBytes()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("shards=%d changed the canonical encoding", shards)
		}
	}
	// Invalid shard counts must still fail validation rather than silently
	// normalize to the shared key.
	s := base
	s.Shards = -1
	if _, err := s.CanonicalBytes(); err == nil {
		t.Fatal("negative Shards produced a key, want validation error")
	}
}
