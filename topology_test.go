package plurality

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// goldenHashes are SHA-256 digests of json.Marshal(*Result) captured on the
// pre-topology code (PR 1) for every registered protocol under a fixed
// seed. The zero-value TopologySpec must keep reproducing these bytes: the
// clique fast path consumes randomness exactly like the historical
// per-engine sampleOther helpers, so introducing the topology layer is not
// allowed to move a single draw.
var goldenHashes = map[string]string{
	"sync":            "00f7ef3a569a0d877556379109344cdcd5b54f4842872e9aa50197e5f86e9505",
	"leader":          "f3ecffed837eb57f155609038c966c77c95956ff5c74bd955c01816ef0666761",
	"decentralized":   "0549b1bca3a98edb581be8600790d5f1e10a638d61f680854c7c0214da674ca2",
	"pull-voting":     "20a91b27636f72ddd13c2c143268d15792eee198e267b80d98f5fd4b124b8a39",
	"two-choices":     "e3d3942182f57f1f4ba64b58bed26d3db1d384469b7b7e28cf03818248331482",
	"3-majority":      "c6c2f4ff1642dcfbd59f633e58a30dc25d2ec280138ad9a5cb3a248958097262",
	"undecided-state": "ceba1991420ee1d1062294bce71070dacd2b2cd7f1c539ebd00a65a029663789",
}

// goldenSpec is the instance the hashes were captured with.
func goldenSpec(name string) Spec {
	spec := Spec{N: 512, K: 4, Alpha: 2, Seed: 11}
	if name == "leader" || name == "decentralized" {
		spec.N = 256
		spec.K = 3
	}
	return spec
}

func TestDefaultTopologyByteIdenticalToPrePR(t *testing.T) {
	for _, name := range Protocols() {
		want, ok := goldenHashes[name]
		if !ok {
			t.Errorf("no golden hash for protocol %q; capture one when adding protocols", name)
			continue
		}
		res, err := Run(context.Background(), name, goldenSpec(name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(blob)); got != want {
			t.Errorf("%s: default-topology result drifted from the pre-topology golden\n got %s\nwant %s",
				name, got, want)
		}
	}
}

func TestTopologiesListsAllKinds(t *testing.T) {
	kinds := Topologies()
	want := []string{TopologyComplete, TopologyRing, TopologyTorus,
		TopologyRandomRegular, TopologyErdosRenyi}
	if len(kinds) != len(want) {
		t.Fatalf("Topologies() = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("Topologies() = %v, want %v", kinds, want)
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []struct {
		name string
		spec Spec
	}{
		{"unknown kind", Spec{N: 100, K: 2, Topology: TopologySpec{Kind: "smallworld"}}},
		{"ring too wide", Spec{N: 10, K: 2, Topology: TopologySpec{Kind: TopologyRing, Width: 5}}},
		{"torus dims mismatch", Spec{N: 100, K: 2, Topology: TopologySpec{Kind: TopologyTorus, Rows: 9, Cols: 9}}},
		{"torus prime n", Spec{N: 101, K: 2, Topology: TopologySpec{Kind: TopologyTorus}}},
		{"torus thin", Spec{N: 100, K: 2, Topology: TopologySpec{Kind: TopologyTorus, Rows: 2, Cols: 50}}},
		{"regular odd nd", Spec{N: 101, K: 2, Topology: TopologySpec{Kind: TopologyRandomRegular, Degree: 3}}},
		{"regular degree 1", Spec{N: 100, K: 2, Topology: TopologySpec{Kind: TopologyRandomRegular, Degree: 1}}},
		{"er p too big", Spec{N: 100, K: 2, Topology: TopologySpec{Kind: TopologyErdosRenyi, P: 1.5}}},
		{"er disconnected", Spec{N: 500, K: 2, Seed: 1, Topology: TopologySpec{Kind: TopologyErdosRenyi, P: 0.001}}},
	}
	for _, c := range bad {
		if _, err := Run(context.Background(), "sync", c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// The good kinds all run end to end on a protocol from each family.
	good := []TopologySpec{
		{},
		{Kind: TopologyComplete},
		{Kind: TopologyRing, Width: 8},
		{Kind: TopologyTorus}, // 144 = 12x12
		{Kind: TopologyRandomRegular, Degree: 8},
		{Kind: TopologyErdosRenyi, P: 0.1},
	}
	for _, tp := range good {
		for _, proto := range []string{"sync", "3-majority"} {
			spec := Spec{N: 144, K: 2, Alpha: 4, Seed: 3, MaxSteps: 4000, Topology: tp}
			res, err := Run(context.Background(), proto, spec)
			if err != nil {
				t.Errorf("%s on %s: %v", proto, tp.Label(), err)
				continue
			}
			if res.Winner < 0 || res.Winner >= 2 {
				t.Errorf("%s on %s: winner %d out of range", proto, tp.Label(), res.Winner)
			}
		}
	}
}

func TestTopologyStatsSurfaced(t *testing.T) {
	spec := Spec{N: 144, K: 2, Alpha: 4, Seed: 3, MaxSteps: 2000,
		Topology: TopologySpec{Kind: TopologyTorus}}
	res, err := Run(context.Background(), "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["topology_nodes"] != 144 {
		t.Errorf("topology_nodes = %v, want 144", res.Stats["topology_nodes"])
	}
	if res.Stats["topology_avg_degree"] != 4 {
		t.Errorf("topology_avg_degree = %v, want 4", res.Stats["topology_avg_degree"])
	}
	// The complete graph must not grow new stats keys (golden guarantee).
	res, err = Run(context.Background(), "sync", Spec{N: 128, K: 2, Alpha: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Stats["topology_nodes"]; ok {
		t.Error("complete topology leaked topology_nodes into Stats")
	}
}

func TestTopologyDeterminism(t *testing.T) {
	spec := Spec{N: 200, K: 2, Alpha: 3, Seed: 9, MaxSteps: 3000,
		Topology: TopologySpec{Kind: TopologyRandomRegular, Degree: 6}}
	a, err := Run(context.Background(), "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("same (spec, seed) produced different results on random-regular")
	}
	// A pinned GraphSeed must fix the graph while the run seed varies.
	spec.Topology.GraphSeed = 77
	if _, err := Run(context.Background(), "sync", spec); err != nil {
		t.Fatalf("pinned GraphSeed run: %v", err)
	}
}

func TestSweepTopologyAxis(t *testing.T) {
	res, err := Sweep(context.Background(), SweepConfig{
		Protocol: "3-majority",
		Base:     Spec{Seed: 1, MaxSteps: 2000},
		Ns:       []int{144},
		Ks:       []int{2},
		Alphas:   []float64{4},
		Reps:     2,
		Topologies: []TopologySpec{
			{},
			{Kind: TopologyTorus},
			{Kind: TopologyRing, Width: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	// Labels reflect the graphs the cells actually ran on: default torus
	// dims resolve per n (144 = 12x12).
	wantLabels := []string{"complete", "torus(12x12)", "ring(w=4)"}
	for i, cell := range res.Cells {
		if cell.Topology != wantLabels[i] {
			t.Errorf("cell %d topology = %q, want %q", i, cell.Topology, wantLabels[i])
		}
	}
	table := res.Render()
	for _, l := range wantLabels {
		if !strings.Contains(table, l) {
			t.Errorf("rendered table misses topology label %q:\n%s", l, table)
		}
	}
	if !strings.Contains(res.CSV(), "topology") {
		t.Error("CSV misses the topology column")
	}
}

func TestInfoTopologyAware(t *testing.T) {
	for _, name := range Protocols() {
		info, err := Info(name)
		if err != nil {
			t.Fatal(err)
		}
		if !info.TopologyAware {
			t.Errorf("built-in protocol %q not marked TopologyAware", name)
		}
	}
}

func TestTopologyLabel(t *testing.T) {
	cases := []struct {
		spec TopologySpec
		want string
	}{
		{TopologySpec{}, "complete"},
		{TopologySpec{Kind: TopologyRing}, "ring"},
		{TopologySpec{Kind: TopologyRing, Width: 3}, "ring(w=3)"},
		{TopologySpec{Kind: TopologyTorus, Rows: 4, Cols: 8}, "torus(4x8)"},
		{TopologySpec{Kind: TopologyTorus}, "torus"},
		{TopologySpec{Kind: TopologyRandomRegular}, "random-regular"},
		{TopologySpec{Kind: TopologyErdosRenyi, P: 0.25}, "erdos-renyi(p=0.25)"},
	}
	for _, c := range cases {
		if got := c.spec.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestTopologyResolve(t *testing.T) {
	cases := []struct {
		spec TopologySpec
		n    int
		want string // Label of the resolved spec
	}{
		{TopologySpec{}, 100, "complete"},
		{TopologySpec{Kind: TopologyRing}, 100, "ring(w=1)"},
		{TopologySpec{Kind: TopologyTorus}, 1024, "torus(32x32)"},
		{TopologySpec{Kind: TopologyTorus}, 900, "torus(30x30)"},
		{TopologySpec{Kind: TopologyTorus, Rows: 25}, 100, "torus(25x4)"},
		{TopologySpec{Kind: TopologyTorus, Cols: 20}, 100, "torus(5x20)"},
		{TopologySpec{Kind: TopologyRandomRegular}, 100, "random-regular(d=4)"},
	}
	for _, c := range cases {
		r, err := c.spec.Resolve(c.n)
		if err != nil {
			t.Errorf("Resolve(%+v, %d): %v", c.spec, c.n, err)
			continue
		}
		if got := r.Label(); got != c.want {
			t.Errorf("Resolve(%+v, %d).Label() = %q, want %q", c.spec, c.n, got, c.want)
		}
	}
	// Resolved ER default P matches what build uses (connectivity default).
	r, err := TopologySpec{Kind: TopologyErdosRenyi}.Resolve(1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.P <= math.Log(1000)/1000 || r.P > 1 {
		t.Errorf("resolved default P = %v below the connectivity threshold", r.P)
	}
	if _, err := (TopologySpec{Kind: TopologyTorus}).Resolve(101); err == nil {
		t.Error("Resolve accepted a prime-n default torus")
	}
	if _, err := (TopologySpec{Kind: TopologyTorus, Rows: 7}).Resolve(100); err == nil {
		t.Error("Resolve accepted rows that do not divide N")
	}
	if _, err := (TopologySpec{Kind: "nope"}).Resolve(100); err == nil {
		t.Error("Resolve accepted an unknown kind")
	}
}
