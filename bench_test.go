package plurality

// This file maps every reproduction experiment (the E1–E13 index in
// DESIGN.md — both paper figures plus each measurable claim) to a `go test
// -bench` target, and adds end-to-end protocol benchmarks so throughput
// regressions in the simulator surface in -benchmem output. Benchmarks run
// the experiments in Quick mode with one replication; cmd/experiments is the
// way to run them at full size.

import (
	"context"
	"testing"

	"plurality/internal/experiments"
	"plurality/internal/metrics"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	spec, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb := spec.Run(experiments.Opts{Reps: 1, Quick: true, Seed: uint64(i)})
		if len(tb.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", name)
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (steps per time unit vs 1/λ).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure2 regenerates Figure 2 (leader phase marks per generation).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkTheorem1 regenerates the Theorem 1 synchronous scaling table.
func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "t1") }

// BenchmarkTheorem13 regenerates the Theorem 13 single-leader table.
func BenchmarkTheorem13(b *testing.B) { benchExperiment(b, "t13") }

// BenchmarkTheorem26 regenerates the Theorem 26 head-to-head table.
func BenchmarkTheorem26(b *testing.B) { benchExperiment(b, "t26") }

// BenchmarkTheorem27 regenerates the clustering table (Theorem 27).
func BenchmarkTheorem27(b *testing.B) { benchExperiment(b, "clustering") }

// BenchmarkTheorem28 regenerates the broadcast table (Theorem 28).
func BenchmarkTheorem28(b *testing.B) { benchExperiment(b, "broadcast") }

// BenchmarkBiasSquaring regenerates the Lemma 4 bias-squaring table.
func BenchmarkBiasSquaring(b *testing.B) { benchExperiment(b, "bias") }

// BenchmarkGenerationGrowth regenerates the Proposition 9 growth table.
func BenchmarkGenerationGrowth(b *testing.B) { benchExperiment(b, "growth") }

// BenchmarkGammaSweep regenerates the §2.2 γ-sweep table.
func BenchmarkGammaSweep(b *testing.B) { benchExperiment(b, "gamma") }

// BenchmarkLatencyAging regenerates the positive-aging latency table.
func BenchmarkLatencyAging(b *testing.B) { benchExperiment(b, "aging") }

// BenchmarkRemark14 regenerates the C1-constants table (Remark 14 /
// Example 15).
func BenchmarkRemark14(b *testing.B) { benchExperiment(b, "c1") }

// BenchmarkShootout regenerates the baseline comparison table.
func BenchmarkShootout(b *testing.B) { benchExperiment(b, "shootout") }

// BenchmarkTailGenerations regenerates the Lemma 11/25 tail table.
func BenchmarkTailGenerations(b *testing.B) { benchExperiment(b, "tail") }

// BenchmarkAblations regenerates the design-choice ablation table
// (two-choices window, generation threshold, signal loss).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkCongestion regenerates the §4.5 leader-congestion table.
func BenchmarkCongestion(b *testing.B) { benchExperiment(b, "congestion") }

// BenchmarkAsyncShootout regenerates the asynchronous baseline comparison.
func BenchmarkAsyncShootout(b *testing.B) { benchExperiment(b, "asyncshootout") }

// --- end-to-end protocol throughput benchmarks ---

// BenchmarkProtocolSync measures one full synchronous run at n=10k.
func BenchmarkProtocolSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunSynchronous(SyncConfig{N: 10000, K: 8, Alpha: 2, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Winner < 0 {
			b.Fatal("impossible winner")
		}
	}
}

// BenchmarkProtocolSingleLeader measures one full single-leader run at n=1k.
func BenchmarkProtocolSingleLeader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunSingleLeader(AsyncConfig{N: 1000, K: 4, Alpha: 2.5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolDecentralized measures one full decentralized run
// (clustering + consensus) at n=1.5k.
func BenchmarkProtocolDecentralized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunDecentralized(AsyncConfig{N: 1500, K: 4, Alpha: 2.5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolThreeMajority measures one 3-majority run at n=10k.
func BenchmarkProtocolThreeMajority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunBaseline("3-majority", BaselineConfig{
			N: 10000, K: 8, Alpha: 2, Seed: uint64(i), RecordEvery: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- streaming vs. accumulating trajectory recording ---

// benchTrajectorySpec is the n=100k instance used to pin the memory/alloc
// win of the streaming-observer path over trajectory accumulation: the
// asynchronous single-leader protocol with a fine recording resolution
// (one snapshot per 0.002 virtual time steps over a bounded horizon), the
// regime where Result.Trajectory costs O(steps) memory.
func benchTrajectorySpec() Spec {
	return Spec{
		N: 100_000, K: 8, Alpha: 1.5, Seed: 1,
		MaxTime: 4, RecordEvery: 0.002,
	}
}

// BenchmarkTrajectoryAccumulating runs the instance with the default
// accumulating Result.Trajectory.
func BenchmarkTrajectoryAccumulating(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), "leader", benchTrajectorySpec())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trajectory) < 1000 {
			b.Fatalf("only %d trajectory points accumulated", len(res.Trajectory))
		}
	}
}

// BenchmarkTrajectoryStreaming runs the identical instance with
// DiscardTrajectory and a streaming Observer: the outcome is evaluated
// incrementally and recording memory stays O(1) regardless of resolution.
func BenchmarkTrajectoryStreaming(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points := 0
		spec := benchTrajectorySpec()
		spec.DiscardTrajectory = true
		spec.Observer = ObserverFunc(func(TrajectoryPoint) { points++ })
		res, err := Run(context.Background(), "leader", spec)
		if err != nil {
			b.Fatal(err)
		}
		if points < 1000 || len(res.Trajectory) != 0 {
			b.Fatalf("streaming run recorded %d points, trajectory %d", points, len(res.Trajectory))
		}
	}
}

// BenchmarkRecorderAccumulating100k isolates the recording path itself:
// 100k snapshots through the accumulating recorder. Compare with the
// streaming variant below — the delta is exactly the O(steps) trajectory
// memory the Observer path avoids.
func BenchmarkRecorderAccumulating100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := metrics.NewRecorder(0.01, false, nil)
		for t := 0; t < 100_000; t++ {
			rec.Append(metrics.Point{Time: float64(t), TopFrac: 0.5, PluralityFrac: 0.5})
		}
		if len(rec.Trajectory()) != 100_000 {
			b.Fatal("trajectory not accumulated")
		}
	}
}

// BenchmarkRecorderStreaming100k drives the same 100k snapshots through a
// discarding recorder with a streaming sink: O(1) memory, near-zero allocs.
func BenchmarkRecorderStreaming100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seen := 0
		rec := metrics.NewRecorder(0.01, true, func(metrics.Point) { seen++ })
		for t := 0; t < 100_000; t++ {
			rec.Append(metrics.Point{Time: float64(t), TopFrac: 0.5, PluralityFrac: 0.5})
		}
		if seen != 100_000 || rec.Trajectory() != nil {
			b.Fatal("streaming recorder misbehaved")
		}
	}
}

// --- typed event kernel + sharded batch layer (PR 3) ---

// benchKernelSpec is the n=100k single-leader instance used to track kernel
// throughput (events/sec) across PRs; BENCH_PR3.json records its history.
func benchKernelSpec() Spec {
	return Spec{N: 100_000, K: 4, Alpha: 2, Seed: 1, MaxTime: 4, DiscardTrajectory: true}
}

// BenchmarkKernelLeader100k runs the asynchronous single-leader protocol at
// n=100k over a fixed virtual-time window on the typed event kernel.
func BenchmarkKernelLeader100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), "leader", benchKernelSpec())
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats["events"] < 100_000 {
			b.Fatal("implausibly few events")
		}
	}
}

// BenchmarkRunBatchSerial and BenchmarkRunBatchParallel bracket the batch
// layer's sharding win: the same eight replications on one worker versus a
// GOMAXPROCS-wide pool. Their ns/op ratio is the parallel speedup.
func benchBatch(b *testing.B, workers int) {
	b.Helper()
	spec := Spec{N: 20_000, K: 4, Alpha: 2, Seed: 1, MaxTime: 4, DiscardTrajectory: true}
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(context.Background(), "leader", spec, 8, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBatchSerial(b *testing.B)   { benchBatch(b, 1) }
func BenchmarkRunBatchParallel(b *testing.B) { benchBatch(b, 0) }
