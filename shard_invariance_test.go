package plurality

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// This file pins what sharded execution must preserve across shard counts.
// Different shard counts are different sample paths, so byte digests cannot
// agree across S — what must agree is the statistical outcome: the Result's
// summary fields (winner, plurality-won, full-consensus, timed-out) are
// identical for Shards ∈ {1, 2, 3, 7} whatever the protocol, topology or
// adversary. That includes cells where the outcome is a consistent
// *shortfall*: the leader protocol's generation budget is derived from
// complete-graph mixing, so on the sparse reference graphs it exhausts the
// horizon with the plurality leading but short of unanimity — at every
// shard count alike. CI runs the matrix under -race in the
// parallel-kernel-matrix job, so it doubles as the race check over the
// barrier loops and the adversary decision views.

// invarianceAdversaries are the fault models the shard-invariance matrix
// crosses with the protocols and topologies. Severities are mild so the
// planted plurality always survives: heavier delay (f=0.3, ×2) can flip the
// winner on the sparse decentralized cells in the serial engine too — the
// paper's theorems cover the honest model only — and an upset cell would
// test the regime, not shard invariance.
var invarianceAdversaries = map[string]AdversarySpec{
	"honest": {},
	"crash":  {Kind: AdversaryCrash, Fraction: 0.1, At: 2, Seed: 5},
	"delay":  {Kind: AdversaryDelay, Fraction: 0.2, Rate: 1.5, Seed: 5},
}

// invarianceSpec is the matrix cell: the golden-matrix shape at a much
// stronger planted bias, with the default (derived) horizon and a pinned
// seed verified to be cross-shard consistent in every cell. The regime is
// deliberately easy, because the invariant under test is shard invariance,
// not regime difficulty: on the sparse reference graphs the decentralized
// protocol's cluster endgame carries a scale-free upset probability (a
// locally-converged cluster can finish first and push a minority color —
// in the serial engine too), and each shard count is a different sample
// path, so a fragile regime would make the cells disagree for reasons that
// have nothing to do with sharding. Alpha 9 shrinks the upset probability
// enough that seed 11 is clean across the whole matrix; each cell is a
// pure function of (spec, seed, shards), so the pin is stable.
func invarianceSpec(tp TopologySpec) Spec {
	return Spec{N: 600, K: 3, Alpha: 9, Seed: 11, Topology: tp}
}

// shardSummary is the shard-count-invariant projection of a Result.
type shardSummary struct {
	Winner        int
	PluralityWon  bool
	FullConsensus bool
	TimedOut      bool
}

// TestShardInvariance runs both event-ladder protocols across the reference
// topologies and fault models at Shards ∈ {1, 2, 3, 7} and asserts the
// summary fields match the serial run's — and that the serial run itself
// has the plurality winning, so the equality is not vacuous.
func TestShardInvariance(t *testing.T) {
	shardCounts := []int{1, 2, 3, 7}
	for _, name := range []string{"leader", "decentralized"} {
		for _, tp := range goldenTopologies {
			for advName, adv := range invarianceAdversaries {
				spec := invarianceSpec(tp)
				spec.Adversary = adv
				if name == "leader" && tp.Kind != TopologyComplete {
					// The leader protocol's sparse cells never reach
					// unanimity (see invarianceSpec); left to the derived
					// horizon they simulate for thousands of time units
					// just to report the same timeout summary. Cap the
					// horizon so the cells stay cheap under -race — the
					// invariant is unchanged: the capped summary must still
					// be identical at every shard count.
					spec.MaxTime = 500
				}
				key := fmt.Sprintf("%s/%s/%s", name, tp.ResolvedLabel(spec.N), advName)
				t.Run(key, func(t *testing.T) {
					if testing.Short() && tp.Kind != TopologyComplete {
						t.Skip("sparse-topology invariance column skipped in -short mode")
					}
					var ref shardSummary
					for i, shards := range shardCounts {
						spec := spec
						spec.Shards = shards
						res, err := Run(context.Background(), name, spec)
						if err != nil {
							t.Fatalf("%s S=%d: %v", key, shards, err)
						}
						got := shardSummary{
							Winner:        res.Winner,
							PluralityWon:  res.PluralityWon,
							FullConsensus: res.FullConsensus,
							TimedOut:      res.TimedOut,
						}
						if i == 0 {
							ref = got
							// The serial baseline must at least have the planted
							// plurality winning, so cross-S equality is not
							// vacuous. Full consensus is not required: the
							// leader protocol's sparse-topology cells exhaust
							// their derived horizon with the plurality leading
							// but short of unanimity — a real property of the
							// protocol outside the paper's complete-graph
							// regime, and one every shard count must reproduce
							// identically.
							if !ref.PluralityWon {
								t.Fatalf("%s serial baseline lost the plurality: %+v", key, ref)
							}
							continue
						}
						if got != ref {
							t.Errorf("%s S=%d summary %+v != serial %+v", key, shards, got, ref)
						}
					}
				})
			}
		}
	}
}

// TestShardsValidationMatrix pins, per registered protocol, which Shards
// values are accepted: the asynchronous event-ladder protocols take any
// 1 < S <= N, the round-based ones reject S > 1 with an error that names the
// sharding-capable protocols, and out-of-range values fail validation for
// everyone.
func TestShardsValidationMatrix(t *testing.T) {
	shardable := map[string]bool{"leader": true, "decentralized": true}
	for _, name := range Protocols() {
		t.Run(name, func(t *testing.T) {
			spec := Spec{N: 300, K: 2, Alpha: 3, Seed: 9, Shards: 2}
			res, err := Run(context.Background(), name, spec)
			if shardable[name] {
				if err != nil {
					t.Fatalf("Shards=2 rejected: %v", err)
				}
				if res.Stats["shards"] != 2 {
					t.Errorf("Stats[shards] = %v, want 2", res.Stats["shards"])
				}
			} else {
				if err == nil {
					t.Fatal("round-based protocol accepted Shards=2")
				}
				for _, want := range []string{"round-based", "leader", "decentralized"} {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("rejection %q does not mention %q", err, want)
					}
				}
			}
			for _, bad := range []int{-1, spec.N + 1} {
				spec := spec
				spec.Shards = bad
				if _, err := Run(context.Background(), name, spec); err == nil {
					t.Errorf("Shards=%d accepted, want validation error", bad)
				}
			}
		})
	}
}

// shardedRoundtripSpec is the snapshot matrix cell size: big enough that a
// mid-run cut lands inside the consensus phase at every tested shard count.
func shardedRoundtripSpec(shards int) Spec {
	return Spec{N: 600, K: 3, Alpha: 2.5, Seed: 7, Shards: shards}
}

// TestShardedSnapshotRoundtrip extends the TestSnapshotRoundtrip guarantee
// to sharded cells: for both event-ladder protocols at Shards ∈ {2, 3},
// honest and adversarial, a run captured at a window barrier mid-run,
// encoded through the wire format and resumed is digest-identical to the
// uninterrupted sharded run — including through RunBatchFrom's worker pool.
func TestShardedSnapshotRoundtrip(t *testing.T) {
	for _, name := range []string{"leader", "decentralized"} {
		for _, shards := range []int{2, 3} {
			for advName, adv := range invarianceAdversaries {
				key := fmt.Sprintf("%s/S=%d/%s", name, shards, advName)
				t.Run(key, func(t *testing.T) {
					if testing.Short() && shards != 2 {
						t.Skip("S=3 roundtrip column skipped in -short mode")
					}
					ctx := context.Background()
					spec := shardedRoundtripSpec(shards)
					spec.Adversary = adv
					plain, err := Run(ctx, name, spec)
					if err != nil {
						t.Fatal(err)
					}
					want := digestResult(plain)

					cspec := spec
					cspec.Checkpoint = CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
					half, err := Run(ctx, name, cspec)
					if err != nil {
						t.Fatal(err)
					}
					if half.Snapshot == nil {
						t.Fatalf("no snapshot captured at t=%g of %g", plain.Duration/2, plain.Duration)
					}
					blob, err := half.Snapshot.Encode()
					if err != nil {
						t.Fatal(err)
					}
					sn, err := DecodeSnapshot(blob)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Resume(ctx, sn, nil)
					if err != nil {
						t.Fatal(err)
					}
					if got := digestResult(res); got != want {
						t.Errorf("resumed digest %s != uninterrupted %s", got, want)
					}
					batch, err := RunBatchFrom(ctx, sn, 2, 2)
					if err != nil {
						t.Fatal(err)
					}
					if got := digestResult(batch[0]); got != want {
						t.Errorf("batch-resumed digest %s != uninterrupted %s", got, want)
					}
				})
			}
		}
	}
}

// TestShardedResumeShardCountMismatch pins the typed rejection: a blob
// captured at Shards=S embeds S per-shard sections and resumes only at S.
// Any other count — including the serial kernel — fails with
// ErrSnapshotShards before any state is decoded.
func TestShardedResumeShardCountMismatch(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"leader", "decentralized"} {
		t.Run(name, func(t *testing.T) {
			spec := shardedRoundtripSpec(3)
			plain, err := Run(ctx, name, spec)
			if err != nil {
				t.Fatal(err)
			}
			cspec := spec
			cspec.Checkpoint = CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
			half, err := Run(ctx, name, cspec)
			if err != nil {
				t.Fatal(err)
			}
			if half.Snapshot == nil {
				t.Fatal("no snapshot captured")
			}
			for _, wrong := range []int{2, 4} {
				tampered := &Snapshot{meta: half.Snapshot.meta, payload: half.Snapshot.payload}
				tampered.meta.Spec.Shards = wrong
				_, err := Resume(ctx, tampered, nil)
				if !errors.Is(err, ErrSnapshotShards) {
					t.Errorf("resume at Shards=%d of a Shards=3 blob: err=%v, want ErrSnapshotShards", wrong, err)
				}
			}
			// Resumed serially the shard prefix is not even a valid serial
			// payload; the failure is still a typed snapshot error, just not
			// a shard-count one (the serial decoder has no shard field to
			// compare).
			tampered := &Snapshot{meta: half.Snapshot.meta, payload: half.Snapshot.payload}
			tampered.meta.Spec.Shards = 1
			if _, err := Resume(ctx, tampered, nil); !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotTruncated) {
				t.Errorf("serial resume of a Shards=3 blob: err=%v, want a typed snapshot error", err)
			}
		})
	}
}
