// Command sweep runs one protocol across a factor grid and prints a table —
// the generic workhorse behind ad-hoc scaling questions ("how does the
// decentralized protocol's ε-convergence time move with k at n=50000?").
// It is a thin shell over plurality.Sweep; Ctrl-C cancels the grid cleanly.
//
// Usage:
//
//	sweep -protocol sync -n 1000,10000,100000 -k 8 -alpha 2 -reps 5
//	sweep -protocol leader -n 2000 -k 2,4,8,16 -alpha 1.5
//	sweep -protocol 3-majority -n 10000 -k 4 -alpha 2 -csv
//	sweep -protocol 3-majority -n 1024 -k 2 -alpha 4 -topology complete,torus,ring
//	sweep -protocol sync -n 10000 -k 4 -topology random-regular -degree 8
//	sweep -protocol leader -n 10000 -adversaries none,crash,drop -adversary-fraction 0.2
//
// With -ndjson the sweep is emitted as one JSON cell per line instead of a
// table — the same encoding a pluralityd stream uses, byte for byte. With
// -serve-addr the sweep is not run locally at all: it is submitted to a
// running pluralityd, whose NDJSON cell stream is copied to stdout as it
// arrives (cached cells arrive instantly):
//
//	sweep -protocol sync -n 1000,10000 -k 4 -ndjson
//	sweep -serve-addr http://localhost:7600 -protocol sync -n 1000,10000 -k 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"plurality"
	"plurality/internal/prof"
	"plurality/internal/server"
)

func main() {
	var (
		protocol = flag.String("protocol", "sync", "protocol name; any entry of plurality.Protocols()")
		ns       = flag.String("n", "10000", "comma-separated node counts")
		ks       = flag.String("k", "4", "comma-separated opinion counts")
		alphas   = flag.String("alpha", "2", "comma-separated initial biases")
		reps     = flag.Int("reps", 5, "replications per grid point")
		workers  = flag.Int("workers", 0, "worker pool bound for the flattened cells-by-reps job list; 0 means GOMAXPROCS, 1 runs sequentially")
		seed     = flag.Uint64("seed", 0, "seed offset")
		latMean  = flag.Float64("latency-mean", 1, "mean channel latency (async)")
		shards   = flag.Int("shards", 0, "split each run across this many parallel event ladders (leader only); 0/1 = serial kernel")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
		topos    = flag.String("topology", "", "comma-separated topology factor (complete | ring | torus | random-regular | erdos-renyi); empty means the complete graph only")
		width    = flag.Int("width", 0, "ring half-width for the ring topology; 0 means 1")
		degree   = flag.Int("degree", 0, "degree for the random-regular topology; 0 means 4")
		p        = flag.Float64("p", 0, "edge probability for the erdos-renyi topology; 0 means 2·ln(n)/n")
		advs     = flag.String("adversaries", "", "comma-separated adversary factor (none | crash | delay | drop | byzantine); empty means honest runs only")
		advFrac  = flag.Float64("adversary-fraction", 0, "affected share for every adversarial cell; 0 means 0.1")
		advRate  = flag.Float64("adversary-rate", 0, "crash churn rate (0 = one-shot) or delay latency multiplier (0 = 1), applied to every adversarial cell")

		ndjson    = flag.Bool("ndjson", false, "emit one JSON cell per line (the pluralityd stream encoding) instead of a table")
		serveAddr = flag.String("serve-addr", "", "submit the sweep to a running pluralityd at this base URL and stream its NDJSON cells to stdout instead of computing locally")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	nList, err := parseInts(*ns)
	ok(err)
	kList, err := parseInts(*ks)
	ok(err)
	aList, err := parseFloats(*alphas)
	ok(err)
	tList, err := parseTopologies(*topos, *width, *degree, *p)
	ok(err)
	advList, err := parseAdversaries(*advs, *advFrac, *advRate)
	ok(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serveAddr != "" {
		// Thin-client mode: the server computes (or serves from its cache);
		// this process just relays the NDJSON stream.
		ok(server.StreamSweep(ctx, *serveAddr, server.SweepRequest{
			Protocol: *protocol,
			Base: plurality.Spec{
				Seed:    *seed,
				Shards:  *shards,
				Latency: plurality.LatencySpec{Mean: *latMean},
			},
			Ns:          nList,
			Ks:          kList,
			Alphas:      aList,
			Topologies:  tList,
			Adversaries: advList,
			Reps:        *reps,
		}, os.Stdout))
		return
	}

	flushProfiles = prof.Start(*cpuProfile, *memProfile)
	defer flushProfiles()

	res, err := plurality.Sweep(ctx, plurality.SweepConfig{
		Protocol: *protocol,
		Base: plurality.Spec{
			Seed:    *seed,
			Shards:  *shards,
			Latency: plurality.LatencySpec{Mean: *latMean},
		},
		Ns:          nList,
		Ks:          kList,
		Alphas:      aList,
		Topologies:  tList,
		Adversaries: advList,
		Reps:        *reps,
		Workers:     *workers,
	})
	ok(err)
	switch {
	case *ndjson:
		// One cell per line through the encoder the server streams with, so
		// local and served output are interchangeable byte-for-byte.
		for _, c := range res.Cells {
			line, err := server.EncodeCell(c)
			ok(err)
			os.Stdout.Write(line)
			os.Stdout.Write([]byte("\n"))
		}
	case *csvOut:
		fmt.Print(res.CSV())
	default:
		fmt.Print(res.Render())
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseTopologies builds the topology axis from a comma-separated kind list;
// the shared width/degree/p knobs apply to every entry of their kind.
func parseTopologies(s string, width, degree int, p float64) ([]plurality.TopologySpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, k := range plurality.Topologies() {
		known[k] = true
	}
	var out []plurality.TopologySpec
	for _, part := range strings.Split(s, ",") {
		kind := strings.TrimSpace(part)
		if !known[kind] {
			return nil, fmt.Errorf("sweep: unknown topology %q (have %v)", kind, plurality.Topologies())
		}
		out = append(out, plurality.TopologySpec{
			Kind: kind, Width: width, Degree: degree, P: p,
		})
	}
	return out, nil
}

// parseAdversaries builds the adversary axis from a comma-separated kind
// list; "none" marks an honest cell, and the shared fraction/rate knobs apply
// to every adversarial entry.
func parseAdversaries(s string, frac, rate float64) ([]plurality.AdversarySpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, k := range plurality.Adversaries() {
		known[k] = true
	}
	var out []plurality.AdversarySpec
	for _, part := range strings.Split(s, ",") {
		kind := strings.TrimSpace(part)
		if kind == "none" {
			out = append(out, plurality.AdversarySpec{})
			continue
		}
		if !known[kind] {
			return nil, fmt.Errorf("sweep: unknown adversary %q (have none and %v)", kind, plurality.Adversaries())
		}
		out = append(out, plurality.AdversarySpec{Kind: kind, Fraction: frac, Rate: rate})
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// flushProfiles finalizes any active profiles before an error exit; it is
// replaced once profiling starts, so an interrupted sweep still leaves
// parseable profile files.
var flushProfiles = func() {}

func ok(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flushProfiles()
		os.Exit(1)
	}
}
