// Command sweep runs one protocol across a factor grid and prints a table —
// the generic workhorse behind ad-hoc scaling questions ("how does the
// decentralized protocol's ε-convergence time move with k at n=50000?").
//
// Usage:
//
//	sweep -protocol sync -n 1000,10000,100000 -k 8 -alpha 2 -reps 5
//	sweep -protocol leader -n 2000 -k 2,4,8,16 -alpha 1.5 -metric eps_time
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality"
	"plurality/internal/harness"
)

func main() {
	var (
		protocol = flag.String("protocol", "sync", "sync | leader | decentralized | baseline name")
		ns       = flag.String("n", "10000", "comma-separated node counts")
		ks       = flag.String("k", "4", "comma-separated opinion counts")
		alphas   = flag.String("alpha", "2", "comma-separated initial biases")
		reps     = flag.Int("reps", 5, "replications per grid point")
		seed     = flag.Uint64("seed", 0, "seed offset")
		latMean  = flag.Float64("latency-mean", 1, "mean channel latency (async)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
	)
	flag.Parse()

	nList, err := parseInts(*ns)
	ok(err)
	kList, err := parseInts(*ks)
	ok(err)
	aList, err := parseFloats(*alphas)
	ok(err)

	table := harness.NewTable(
		fmt.Sprintf("sweep: %s", *protocol),
		[]string{"n", "k", "alpha"},
		[]string{"duration", "eps_time", "consensus_time", "plurality_won"},
	)
	for _, n := range nList {
		for _, k := range kList {
			for _, a := range aList {
				n, k, a := n, k, a
				agg := harness.Replicate(*reps, func(rep uint64) harness.Metrics {
					res, err := runOne(*protocol, n, k, a, *seed+rep*1e6+1, *latMean)
					if err != nil {
						fmt.Fprintln(os.Stderr, "sweep:", err)
						os.Exit(1)
					}
					m := harness.Metrics{
						"duration": res.Duration,
						"plurality_won": b2f(res.PluralityWon &&
							res.FullConsensus),
					}
					if res.EpsReached {
						m["eps_time"] = res.EpsTime
					}
					if res.FullConsensus {
						m["consensus_time"] = res.ConsensusTime
					}
					return m
				})
				table.Append(map[string]float64{
					"n": float64(n), "k": float64(k), "alpha": a,
				}, agg)
			}
		}
	}
	if *csvOut {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.Render())
	}
}

func runOne(protocol string, n, k int, alpha float64, seed uint64, latMean float64) (*plurality.Result, error) {
	switch protocol {
	case "sync":
		return plurality.RunSynchronous(plurality.SyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed,
		})
	case "leader":
		return plurality.RunSingleLeader(plurality.AsyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed,
			Latency: plurality.LatencySpec{Mean: latMean},
		})
	case "decentralized":
		return plurality.RunDecentralized(plurality.AsyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed,
			Latency: plurality.LatencySpec{Mean: latMean},
		})
	default:
		return plurality.RunBaseline(protocol, plurality.BaselineConfig{
			N: n, K: k, Alpha: alpha, Seed: seed,
		})
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func ok(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
