// Command sweep runs one protocol across a factor grid and prints a table —
// the generic workhorse behind ad-hoc scaling questions ("how does the
// decentralized protocol's ε-convergence time move with k at n=50000?").
// It is a thin shell over plurality.Sweep; Ctrl-C cancels the grid cleanly.
//
// Usage:
//
//	sweep -protocol sync -n 1000,10000,100000 -k 8 -alpha 2 -reps 5
//	sweep -protocol leader -n 2000 -k 2,4,8,16 -alpha 1.5
//	sweep -protocol 3-majority -n 10000 -k 4 -alpha 2 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"plurality"
)

func main() {
	var (
		protocol = flag.String("protocol", "sync", "protocol name; any entry of plurality.Protocols()")
		ns       = flag.String("n", "10000", "comma-separated node counts")
		ks       = flag.String("k", "4", "comma-separated opinion counts")
		alphas   = flag.String("alpha", "2", "comma-separated initial biases")
		reps     = flag.Int("reps", 5, "replications per grid point")
		seed     = flag.Uint64("seed", 0, "seed offset")
		latMean  = flag.Float64("latency-mean", 1, "mean channel latency (async)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
	)
	flag.Parse()

	nList, err := parseInts(*ns)
	ok(err)
	kList, err := parseInts(*ks)
	ok(err)
	aList, err := parseFloats(*alphas)
	ok(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := plurality.Sweep(ctx, plurality.SweepConfig{
		Protocol: *protocol,
		Base: plurality.Spec{
			Seed:    *seed,
			Latency: plurality.LatencySpec{Mean: *latMean},
		},
		Ns:     nList,
		Ks:     kList,
		Alphas: aList,
		Reps:   *reps,
	})
	ok(err)
	if *csvOut {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Render())
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func ok(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
