// Command experiments regenerates the paper's figures and validates its
// claims (the E1–E13 index of DESIGN.md). Each experiment prints an aligned
// ASCII table and optionally writes CSV files.
//
// Usage:
//
//	experiments -list
//	experiments fig1 fig2
//	experiments -reps 10 -csv results/ all
//	experiments -quick all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"plurality/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		reps   = flag.Int("reps", 5, "replications per grid point")
		quick  = flag.Bool("quick", false, "shrink grids for a fast smoke run")
		seed   = flag.Uint64("seed", 0, "seed offset for all replications")
		csvDir = flag.String("csv", "", "directory to write CSV files into")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-6s %-12s %s\n", s.ID, s.Name, s.Paper)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment named; try -list or 'all'")
		os.Exit(1)
	}
	var specs []experiments.Spec
	if len(names) == 1 && names[0] == "all" {
		specs = experiments.All()
	} else {
		for _, name := range names {
			s, err := experiments.Lookup(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			specs = append(specs, s)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Opts{Reps: *reps, Quick: *quick, Seed: *seed, Ctx: ctx}
	for _, s := range specs {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; last table is partial")
			os.Exit(1)
		}
		start := time.Now()
		table := s.Run(opts)
		fmt.Printf("%s [%s: %s] (%.1fs)\n", table.Render(), s.ID, s.Paper,
			time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, s.Name+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n\n", path)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; last table is partial")
		os.Exit(1)
	}
}
