// Command pluralityd serves plurality-consensus simulation as a service: an
// HTTP/JSON daemon accepting single runs (POST /v1/runs) and factor-grid
// sweeps (POST /v1/sweeps), executing them on a bounded worker pool with
// admission control, streaming sweep cells as NDJSON while later cells are
// still computing, and caching every completed job in a content-addressed
// store — a resubmitted or overlapping sweep is served byte-identically
// with zero simulation work.
//
// With -store set, state survives restarts: sweep manifests and checkpoint
// segments persist there, SIGTERM drains in-flight work to snapshots, and
// the next boot resumes every unfinished sweep where it left off.
//
// Usage:
//
//	pluralityd -addr :7600 -store /var/lib/pluralityd
//	curl -s localhost:7600/v1/protocols | jq .
//	curl -s -X POST localhost:7600/v1/sweeps -d '{"protocol":"sync","base":{"seed":1},"ns":[1000,10000],"ks":[4],"alphas":[2]}'
//
// Endpoints:
//
//	GET  /healthz               liveness (503 while draining)
//	GET  /v1/protocols          registered protocols and capabilities
//	GET  /v1/stats              work counters and pool load
//	POST /v1/runs               one run, synchronous; Result JSON
//	POST /v1/sweeps             submit + stream NDJSON cells (?async=1: just the ID)
//	GET  /v1/sweeps/{id}        progress counters
//	GET  /v1/sweeps/{id}/stream replay + follow a sweep's cell stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plurality/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":7600", "listen address")
		storeDir = flag.String("store", "", "persistence directory (result cache, sweep manifests, checkpoint segments); empty runs in memory only")
		workers  = flag.Int("workers", 0, "simulation worker pool bound; 0 means GOMAXPROCS")
		queueCap = flag.Int("queue-cap", 0, "admission queue capacity (jobs); submissions beyond it get 429; 0 means 4096")
		ckptEvry = flag.Float64("checkpoint-every", 256, "checkpoint segment length in the protocol's native clock (virtual time or rounds); 0 disables segmentation")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget: time to let in-flight jobs finish their current checkpoint segment")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Dir:             *storeDir,
		Workers:         *workers,
		QueueCap:        *queueCap,
		CheckpointEvery: *ckptEvry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "pluralityd: listening on %s (store: %s)\n", *addr, storeOrMemory(*storeDir))
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Graceful drain: first suspend the simulation pool (in-flight jobs
	// persist their current segment; open streams are told to reconnect
	// after restart), then close the listener and let handlers finish.
	fmt.Fprintln(os.Stderr, "pluralityd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pluralityd: drain incomplete: %v\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pluralityd: http shutdown: %v\n", err)
	}
}

func storeOrMemory(dir string) string {
	if dir == "" {
		return "memory only"
	}
	return dir
}
