// Command plurality runs a single plurality-consensus instance and prints
// its trajectory and outcome.
//
// Usage:
//
//	plurality -protocol sync -n 100000 -k 8 -alpha 1.5 -seed 1
//	plurality -protocol leader -n 5000 -k 4 -alpha 2 -latency-mean 2
//	plurality -protocol decentralized -n 5000 -k 4 -alpha 2
//	plurality -protocol 3-majority -n 10000 -k 8 -alpha 2
//
// Protocols: sync, leader, decentralized, and every baseline listed by
// plurality.Baselines().
package main

import (
	"flag"
	"fmt"
	"os"

	"plurality"
)

func main() {
	var (
		protocol    = flag.String("protocol", "sync", "sync | leader | decentralized | pull-voting | two-choices | 3-majority | undecided-state")
		n           = flag.Int("n", 10000, "number of nodes")
		k           = flag.Int("k", 4, "number of opinions")
		alpha       = flag.Float64("alpha", 2, "initial multiplicative bias")
		seed        = flag.Uint64("seed", 1, "random seed")
		gamma       = flag.Float64("gamma", 0.5, "generation density threshold (sync)")
		theoretical = flag.Bool("theoretical", false, "use the paper's predefined schedule (sync)")
		latencyKind = flag.String("latency", "exp", "latency kind: exp | const | uniform | erlang")
		latencyMean = flag.Float64("latency-mean", 1, "mean channel latency")
		maxTime     = flag.Float64("max-time", 0, "abort horizon (async protocols)")
		trajectory  = flag.Bool("trajectory", false, "print the full trajectory")
		quiet       = flag.Bool("q", false, "print only the outcome line")
	)
	flag.Parse()

	res, err := run(*protocol, *n, *k, *alpha, *seed, *gamma, *theoretical,
		*latencyKind, *latencyMean, *maxTime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plurality:", err)
		os.Exit(1)
	}

	if !*quiet {
		fmt.Printf("protocol=%s n=%d k=%d alpha=%g seed=%d\n",
			*protocol, *n, *k, *alpha, *seed)
		if *trajectory {
			fmt.Printf("%10s  %8s  %8s  %10s  %6s\n", "time", "top", "plural", "bias", "gen")
			for _, p := range res.Trajectory {
				fmt.Printf("%10.2f  %8.4f  %8.4f  %10.3g  %6d\n",
					p.Time, p.TopFrac, p.PluralityFrac, p.Bias, p.MaxGen)
			}
		}
		fmt.Printf("plurality frac  %s\n", sparkline(res, 60))
		for key, v := range res.Stats {
			fmt.Printf("stat %-20s %g\n", key, v)
		}
		if res.EpsReached {
			fmt.Printf("ε=%.3g-convergence at t=%.4g\n", res.Eps, res.EpsTime)
		}
	}
	fmt.Println(res)
	if !res.PluralityWon {
		os.Exit(2)
	}
}

// sparkline renders the PluralityFrac trajectory as a width-character bar
// strip, resampling the recorded points evenly over the run's duration.
func sparkline(res *plurality.Result, width int) string {
	if len(res.Trajectory) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, width)
	duration := res.Trajectory[len(res.Trajectory)-1].Time
	j := 0
	for i := 0; i < width; i++ {
		target := duration * float64(i) / float64(width-1)
		for j < len(res.Trajectory)-1 && res.Trajectory[j+1].Time <= target {
			j++
		}
		v := res.Trajectory[j].PluralityFrac
		idx := int(v * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = levels[idx]
	}
	return string(out)
}

func run(protocol string, n, k int, alpha float64, seed uint64, gamma float64,
	theoretical bool, latKind string, latMean, maxTime float64) (*plurality.Result, error) {
	switch protocol {
	case "sync":
		return plurality.RunSynchronous(plurality.SyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed, Gamma: gamma,
			TheoreticalSchedule: theoretical,
		})
	case "leader":
		return plurality.RunSingleLeader(plurality.AsyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed, MaxTime: maxTime,
			Latency: plurality.LatencySpec{Kind: latKind, Mean: latMean},
		})
	case "decentralized":
		return plurality.RunDecentralized(plurality.AsyncConfig{
			N: n, K: k, Alpha: alpha, Seed: seed, MaxTime: maxTime,
			Latency: plurality.LatencySpec{Kind: latKind, Mean: latMean},
		})
	default:
		return plurality.RunBaseline(protocol, plurality.BaselineConfig{
			N: n, K: k, Alpha: alpha, Seed: seed,
		})
	}
}
