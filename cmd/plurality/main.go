// Command plurality runs a single plurality-consensus instance and prints
// its trajectory and outcome. Every protocol in the registry is available
// by name; Ctrl-C cancels a running instance cleanly.
//
// Usage:
//
//	plurality -list
//	plurality -protocol sync -n 100000 -k 8 -alpha 1.5 -seed 1
//	plurality -protocol leader -n 5000 -k 4 -alpha 2 -latency-mean 2
//	plurality -protocol leader -n 1000000 -k 4 -alpha 2 -shards 4
//	plurality -protocol decentralized -n 5000 -k 4 -alpha 2
//	plurality -protocol 3-majority -n 10000 -k 8 -alpha 2 -sequential
//	plurality -protocol sync -n 1000000 -k 8 -alpha 1.5 -stream
//	plurality -protocol 3-majority -n 1024 -k 2 -alpha 4 -topology torus
//	plurality -protocol sync -n 10000 -k 4 -topology random-regular -degree 8
//	plurality -protocol sync -n 10000 -k 4 -topology erdos-renyi -p 0.002 -json
//	plurality -protocol leader -n 100000 -checkpoint run.snap -checkpoint-at 8 -checkpoint-halt
//	plurality -resume run.snap
//	plurality -resume run.snap -perturb 3 -max-time 500
//	plurality -bench -bench-protocol sync -n 1000000 -k 4 -alpha 2
//	plurality -bench -bench-protocol 3-majority -n 100000 -topology torus
//	plurality -protocol leader -n 10000 -adversary crash -adversary-fraction 0.2 -adversary-rate 2
//	plurality -protocol decentralized -n 5000 -adversary byzantine -adversary-fraction 0.1
//
// Protocols: everything listed by plurality.Protocols() — sync, leader,
// decentralized, and the four baseline dynamics. Topologies: everything
// listed by plurality.Topologies(); the default complete graph is the
// paper's model. Adversaries: plurality.Adversaries() — crash/churn, message
// delay/drop, Byzantine opinion-lying; the paper's theorems cover only the
// honest (empty) setting.
//
// Checkpointing: -checkpoint-at T captures the full simulator state the
// first time virtual time (or the round counter) reaches T; -checkpoint
// FILE writes it as a binary blob plus a FILE.json metadata sidecar, and
// -checkpoint-halt stops the run right after. -resume FILE continues a
// blob bit-exactly (same Result an uninterrupted run would produce);
// -perturb L branches an independent deterministic future off the shared
// prefix instead, and -max-time extends the horizon of a timed-out run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"plurality"
	"plurality/internal/prof"
)

// flushProfiles finalizes any active profiles; exit() routes every
// post-setup termination through it so an error or losing run still leaves
// parseable profile files (os.Exit skips defers). It is replaced once
// profiling starts.
var flushProfiles = func() {}

// exit flushes profiles and terminates with code.
func exit(code int) {
	flushProfiles()
	os.Exit(code)
}

func main() {
	var (
		protocol    = flag.String("protocol", "sync", "protocol name; see -list")
		list        = flag.Bool("list", false, "list registered protocols and exit")
		n           = flag.Int("n", 10000, "number of nodes")
		k           = flag.Int("k", 4, "number of opinions")
		alpha       = flag.Float64("alpha", 2, "initial multiplicative bias")
		seed        = flag.Uint64("seed", 1, "random seed")
		gamma       = flag.Float64("gamma", 0.5, "generation density threshold (sync)")
		theoretical = flag.Bool("theoretical", false, "use the paper's predefined schedule (sync)")
		latencyKind = flag.String("latency", "exp", "latency kind: exp | const | uniform | erlang")
		latencyMean = flag.Float64("latency-mean", 1, "mean channel latency")
		maxTime     = flag.Float64("max-time", 0, "abort horizon (async protocols)")
		shards      = flag.Int("shards", 0, "split one run across this many parallel event ladders (asynchronous protocols: leader, decentralized); 0/1 = serial kernel, byte-identical output")
		sequential  = flag.Bool("sequential", false, "population-protocol scheduler (baselines)")
		trajectory  = flag.Bool("trajectory", false, "print the full trajectory")
		stream      = flag.Bool("stream", false, "do not accumulate the trajectory (O(1) memory); without -json, print snapshots live")
		quiet       = flag.Bool("q", false, "print only the outcome line")
		jsonOut     = flag.Bool("json", false, "emit the run as one JSON object on stdout (for analysis scripts); with -stream the object omits the trajectory")

		bench         = flag.Bool("bench", false, "benchmark mode: run with O(1) recording and emit a throughput report as JSON on stdout (events/sec for the asynchronous protocols, node-updates/sec for round-based ones — see work_unit — plus allocs and peak heap)")
		benchProtocol = flag.String("bench-protocol", "", "with -bench: protocol to benchmark, overriding -protocol; every registered protocol (sync, decentralized, the baselines) is benchmarkable")
		benchReps     = flag.Int("bench-reps", 1, "with -bench: replications to run through the parallel batch layer")
		benchWorkers  = flag.Int("bench-workers", 0, "with -bench: worker bound for the batch layer; 0 means GOMAXPROCS")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		checkpointPath = flag.String("checkpoint", "", "write a snapshot blob to this file (plus a .json metadata sidecar); requires -checkpoint-at")
		checkpointAt   = flag.Float64("checkpoint-at", 0, "virtual time (or round) to capture the snapshot at")
		checkpointHalt = flag.Bool("checkpoint-halt", false, "stop the run right after capturing the snapshot")
		resumePath     = flag.String("resume", "", "resume a run from a snapshot blob written by -checkpoint (protocol and parameters come from the blob)")
		perturb        = flag.Uint64("perturb", 0, "with -resume: fold this divergence label into every RNG stream (0 = bit-exact continuation)")

		advKind = flag.String("adversary", "", "fault model: crash | delay | drop | byzantine; empty runs honestly (the paper's model)")
		advFrac = flag.Float64("adversary-fraction", 0, "affected share (nodes for crash/byzantine, messages for delay/drop); 0 means 0.1")
		advRate = flag.Float64("adversary-rate", 0, "crash churn rate (0 = one-shot) or delay latency multiplier (0 = 1)")
		advAt   = flag.Float64("adversary-at", 0, "virtual time (or round) the crash adversary first acts")
		advSeed = flag.Uint64("adversary-seed", 0, "pin the adversary's private generator; 0 derives it from -seed")

		topology  = flag.String("topology", "complete", "interaction graph: complete | ring | torus | random-regular | erdos-renyi")
		width     = flag.Int("width", 0, "ring half-width (neighbors v±1..v±width); 0 means 1")
		rows      = flag.Int("rows", 0, "torus rows; 0 infers from n and -cols (near-square when both are 0)")
		cols      = flag.Int("cols", 0, "torus cols; 0 infers from n and -rows (near-square when both are 0)")
		degree    = flag.Int("degree", 0, "random-regular degree; 0 means 4")
		p         = flag.Float64("p", 0, "erdos-renyi edge probability; 0 means 2·ln(n)/n")
		graphSeed = flag.Uint64("graph-seed", 0, "pin the random-graph construction seed; 0 derives it from -seed")
	)
	flag.Parse()

	if *list {
		for _, name := range plurality.Protocols() {
			info, err := plurality.Info(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			unit := "rounds"
			if info.Async {
				unit = "virtual time"
			}
			graphs := "clique-only"
			if info.TopologyAware {
				graphs = "any topology"
			}
			fmt.Printf("%-16s %-12s %-12s %-13s %s\n", info.Name, info.Family, unit, graphs, info.Description)
		}
		fmt.Printf("\ntopologies: %v\n", plurality.Topologies())
		fmt.Printf("adversaries: %v\n", plurality.Adversaries())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	flushProfiles = prof.Start(*cpuProfile, *memProfile)
	defer flushProfiles()

	spec := plurality.Spec{
		N: *n, K: *k, Alpha: *alpha, Seed: *seed, MaxTime: *maxTime, Shards: *shards,
		Latency:  plurality.LatencySpec{Kind: *latencyKind, Mean: *latencyMean},
		Sync:     plurality.SyncOptions{Gamma: *gamma, TheoreticalSchedule: *theoretical},
		Baseline: plurality.BaselineOptions{Sequential: *sequential},
		Topology: plurality.TopologySpec{
			Kind: *topology, Width: *width, Rows: *rows, Cols: *cols,
			Degree: *degree, P: *p, GraphSeed: *graphSeed,
		},
		Adversary: plurality.AdversarySpec{
			Kind: *advKind, Fraction: *advFrac, Rate: *advRate, At: *advAt, Seed: *advSeed,
		},
	}
	// -stream always keeps recording memory O(1); the live snapshot printer
	// only makes sense for the human-readable output, not inside -json.
	if *stream {
		spec.DiscardTrajectory = true
		if !*jsonOut {
			spec.Observer = plurality.ObserverFunc(func(p plurality.TrajectoryPoint) {
				fmt.Printf("%10.2f  %8.4f  %8.4f  %10.3g  %6d\n",
					p.Time, p.TopFrac, p.PluralityFrac, p.Bias, p.MaxGen)
			})
			fmt.Printf("%10s  %8s  %8s  %10s  %6s\n", "time", "top", "plural", "bias", "gen")
		}
	}

	if *checkpointAt != 0 {
		// Negative values reach validation and fail there with a typed
		// message instead of being silently ignored.
		spec.Checkpoint = plurality.CheckpointSpec{SnapshotAt: *checkpointAt, Halt: *checkpointHalt}
	}
	if *checkpointPath != "" && *checkpointAt <= 0 {
		fmt.Fprintln(os.Stderr, "plurality: -checkpoint requires -checkpoint-at > 0")
		exit(1)
	}
	if *checkpointAt > 0 && *checkpointPath == "" {
		// Without a file the captured snapshot would be dropped on the
		// floor (and -checkpoint-halt would truncate the run for nothing).
		fmt.Fprintln(os.Stderr, "plurality: -checkpoint-at requires -checkpoint FILE to write the snapshot to")
		exit(1)
	}

	// Label the interaction graph a run actually uses (defaults resolved),
	// and the fault model it runs under.
	topoLabel := spec.Topology.ResolvedLabel(*n)
	advLabel := spec.Adversary.Label()

	if *bench {
		name := *protocol
		if *benchProtocol != "" {
			name = *benchProtocol
		}
		var rep *plurality.BenchReport
		var err error
		if *benchReps > 1 {
			rep, err = plurality.BenchBatch(ctx, name, spec, *benchReps, *benchWorkers)
		} else {
			rep, err = plurality.Bench(ctx, name, spec)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Println(rep.JSON())
		return
	}

	var res *plurality.Result
	var err error
	if *resumePath != "" {
		blob, ferr := os.ReadFile(*resumePath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			exit(1)
		}
		snapshot, derr := plurality.DecodeSnapshot(blob)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			exit(1)
		}
		meta := snapshot.Meta()
		// The blob fixes the run's identity; reported labels follow it.
		*protocol = meta.Protocol
		*n, *k, *alpha, *seed = meta.Spec.N, meta.Spec.K, meta.Spec.Alpha, meta.Spec.Seed
		topoLabel = meta.Spec.Topology.ResolvedLabel(meta.Spec.N)
		advLabel = meta.Spec.Adversary.Label()
		opts := &plurality.ResumeOptions{
			Observer: spec.Observer,
			Perturb:  *perturb,
			// -stream keeps its O(1)-memory contract on resumed runs too.
			DiscardTrajectory: spec.DiscardTrajectory,
			Checkpoint:        spec.Checkpoint,
		}
		if *maxTime > 0 {
			opts.MaxTime = *maxTime
		}
		fmt.Fprintf(os.Stderr, "resuming %s from t=%g (%s)\n", meta.Protocol, meta.Time, *resumePath)
		res, err = plurality.Resume(ctx, snapshot, opts)
	} else {
		res, err = plurality.Run(ctx, *protocol, spec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if *checkpointPath != "" {
		if res.Snapshot == nil {
			fmt.Fprintf(os.Stderr, "plurality: run ended before -checkpoint-at %g; no snapshot written\n", *checkpointAt)
			exit(1)
		}
		if err := writeSnapshot(res.Snapshot, *checkpointPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}

	if *jsonOut {
		out := struct {
			Protocol  string            `json:"protocol"`
			N         int               `json:"n"`
			K         int               `json:"k"`
			Alpha     float64           `json:"alpha"`
			Seed      uint64            `json:"seed"`
			Topology  string            `json:"topology"`
			Adversary string            `json:"adversary,omitempty"`
			Result    *plurality.Result `json:"result"`
		}{*protocol, *n, *k, *alpha, *seed, topoLabel, "", res}
		if advLabel != "none" {
			out.Adversary = advLabel
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if !res.PluralityWon {
			exit(2)
		}
		return
	}

	if !*quiet {
		// The adversary tag appears only on adversarial runs, keeping honest
		// output byte-identical to pre-adversary builds.
		advTag := ""
		if advLabel != "none" {
			advTag = " adversary=" + advLabel
		}
		fmt.Printf("protocol=%s n=%d k=%d alpha=%g seed=%d topology=%s%s\n",
			*protocol, *n, *k, *alpha, *seed, topoLabel, advTag)
		if *trajectory && !*stream {
			fmt.Printf("%10s  %8s  %8s  %10s  %6s\n", "time", "top", "plural", "bias", "gen")
			for _, p := range res.Trajectory {
				fmt.Printf("%10.2f  %8.4f  %8.4f  %10.3g  %6d\n",
					p.Time, p.TopFrac, p.PluralityFrac, p.Bias, p.MaxGen)
			}
		}
		if line := sparkline(res, 60); line != "" {
			fmt.Printf("plurality frac  %s\n", line)
		}
		for key, v := range res.Stats {
			fmt.Printf("stat %-20s %g\n", key, v)
		}
		if res.EpsReached {
			fmt.Printf("ε=%.3g-convergence at t=%.4g\n", res.Eps, res.EpsTime)
		}
	}
	fmt.Println(res)
	if !res.PluralityWon {
		exit(2)
	}
}

// writeSnapshot writes the blob to path and its metadata sidecar to
// path+".json", so runs can be inspected without parsing the binary.
func writeSnapshot(s *plurality.Snapshot, path string) error {
	blob, err := s.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	meta, err := s.MetaJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path+".json", append(meta, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snapshot: %s (%d bytes) at t=%g, metadata in %s.json\n",
		path, len(blob), s.Meta().Time, path)
	return nil
}

// sparkline renders the PluralityFrac trajectory as a width-character bar
// strip, resampling the recorded points evenly over the run's duration.
func sparkline(res *plurality.Result, width int) string {
	if len(res.Trajectory) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, width)
	duration := res.Trajectory[len(res.Trajectory)-1].Time
	j := 0
	for i := 0; i < width; i++ {
		target := duration * float64(i) / float64(width-1)
		for j < len(res.Trajectory)-1 && res.Trajectory[j+1].Time <= target {
			j++
		}
		v := res.Trajectory[j].PluralityFrac
		idx := int(v * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = levels[idx]
	}
	return string(out)
}
