package plurality

import (
	"fmt"
	"math"

	"plurality/internal/sim"
)

// LatencySpec describes the channel-establishment latency distribution T2 of
// the asynchronous model without exposing simulator internals. The zero
// value means "the paper's default": exponential with mean 1.
type LatencySpec struct {
	// Kind selects the distribution: "exp" (default), "const", "uniform"
	// or "erlang". The non-exponential kinds exercise the positive-aging
	// generalization of the PODC version of the paper.
	Kind string `json:"kind,omitempty"`
	// Mean is the expected latency (> 0); default 1. For "uniform" the
	// support is [0, 2·Mean); for "erlang" the rate is Shape/Mean.
	Mean float64 `json:"mean,omitempty"`
	// Shape is the Erlang stage count (>= 1); only used by "erlang".
	Shape int `json:"shape,omitempty"`
}

// build converts the spec into the simulator's latency type.
func (l LatencySpec) build() (sim.Latency, error) {
	mean := l.Mean
	if mean == 0 {
		mean = 1
	}
	if mean < 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("plurality: latency mean %v must be positive and finite", mean)
	}
	switch l.Kind {
	case "", "exp":
		return sim.ExpLatency{Rate: 1 / mean}, nil
	case "const":
		return sim.ConstLatency{D: mean}, nil
	case "uniform":
		return sim.UniformLatency{Lo: 0, Hi: 2 * mean}, nil
	case "erlang":
		shape := l.Shape
		if shape <= 0 {
			shape = 2
		}
		return sim.ErlangLatency{K: shape, Rate: float64(shape) / mean}, nil
	default:
		return nil, fmt.Errorf("plurality: unknown latency kind %q", l.Kind)
	}
}
