package plurality

import (
	"context"
	"fmt"

	"plurality/internal/harness"
	"plurality/internal/stats"
)

// RunMany executes reps seeded replications of one protocol in parallel
// (bounded by GOMAXPROCS) and returns the results in replication order:
// result i ran with spec.Seed + i and is identical to the corresponding
// single Run. The first error cancels the remaining replications.
func RunMany(ctx context.Context, name string, spec Spec, reps int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("plurality: RunMany with reps=%d", reps)
	}
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, reps)
	err = harness.ForEach(ctx, reps, func(ctx context.Context, i int) error {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		res, err := p.Run(ctx, s)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Summary aggregates one metric over the replications of a sweep cell.
type Summary struct {
	// N is the number of observations.
	N int
	// Mean is the sample mean and SE its standard error.
	Mean, SE float64
	// Min and Max bracket the observations.
	Min, Max float64
}

func summarize(s *stats.Summary) Summary {
	return Summary{N: s.N(), Mean: s.Mean(), SE: s.SE(), Min: s.Min(), Max: s.Max()}
}

// SweepConfig describes a factor-grid sweep of one protocol.
type SweepConfig struct {
	// Protocol is the registered protocol name to run.
	Protocol string
	// Base is the Spec shared by every grid point; the grid axes override
	// its N, K and Alpha per cell, and replication r runs with seed
	// Base.Seed + r·10⁶ + 1 so cells reuse seeds but replications never
	// collide within one cell.
	Base Spec
	// Ns, Ks and Alphas are the grid axes; an empty axis means the single
	// value from Base.
	Ns     []int
	Ks     []int
	Alphas []float64
	// Topologies is the interaction-graph axis; an empty axis means the
	// single Base.Topology. With entries, every grid point runs once per
	// topology and the result table gains a "topology" label column.
	Topologies []TopologySpec
	// Reps is the number of seeded replications per grid point; default 5.
	Reps int
	// Metrics optionally maps each Result to named measurements. nil means
	// the standard set: duration, plurality_won (0/1 for plurality victory
	// with full consensus), eps_time (when ε-convergence was reached) and
	// consensus_time (when full consensus was reached).
	Metrics func(*Result) map[string]float64
}

// SweepCell is one grid point's aggregated outcome.
type SweepCell struct {
	// N, K and Alpha locate the cell in the grid.
	N, K  int
	Alpha float64
	// Topology is the interaction graph of the cell (TopologySpec.Label
	// form, e.g. "complete" or "torus(32x32)").
	Topology string
	// Metrics holds the aggregated measurements of the cell.
	Metrics map[string]Summary
}

// SweepResult is the outcome of a Sweep, renderable as an aligned ASCII
// table or CSV.
type SweepResult struct {
	// Protocol is the protocol that ran.
	Protocol string
	// Cells holds one entry per grid point, in grid order (n-major, then
	// k, then alpha, then topology).
	Cells []SweepCell

	table *harness.Table
}

// Render returns the sweep as an aligned ASCII table.
func (r *SweepResult) Render() string { return r.table.Render() }

// CSV returns the sweep in CSV form (mean, SE and count per metric).
func (r *SweepResult) CSV() string { return r.table.CSV() }

// StandardMetrics is the default per-run measurement set used by Sweep.
func StandardMetrics(res *Result) map[string]float64 {
	m := map[string]float64{
		"duration": res.Duration,
	}
	if res.PluralityWon && res.FullConsensus {
		m["plurality_won"] = 1
	} else {
		m["plurality_won"] = 0
	}
	if res.EpsReached {
		m["eps_time"] = res.EpsTime
	}
	if res.FullConsensus {
		m["consensus_time"] = res.ConsensusTime
	}
	return m
}

// Sweep runs one protocol across the factor grid of cfg, replicating every
// grid point with distinct seeds in parallel, and aggregates the metrics
// per cell. It stops at the first error — including ctx cancellation, which
// every underlying run honours promptly.
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := Lookup(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	metricFn := cfg.Metrics
	order := []string{}
	if metricFn == nil {
		metricFn = StandardMetrics
		order = []string{"duration", "eps_time", "consensus_time", "plurality_won"}
	}
	ns := cfg.Ns
	if len(ns) == 0 {
		ns = []int{cfg.Base.N}
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{cfg.Base.K}
	}
	alphas := cfg.Alphas
	if len(alphas) == 0 {
		alphas = []float64{cfg.Base.Alpha}
	}
	topos := cfg.Topologies
	if len(topos) == 0 {
		topos = []TopologySpec{cfg.Base.Topology}
	}

	out := &SweepResult{
		Protocol: cfg.Protocol,
		table: harness.NewTable(fmt.Sprintf("sweep: %s", cfg.Protocol),
			[]string{"n", "k", "alpha"}, order),
	}
	if len(cfg.Topologies) > 0 {
		out.table.LabelOrder = []string{"topology"}
	}
	for _, n := range ns {
		for _, k := range ks {
			for _, a := range alphas {
				for _, tp := range topos {
					spec := cfg.Base
					spec.N, spec.K, spec.Alpha, spec.Topology = n, k, a, tp
					// Validate with replication 0's actual seed so the
					// random-graph connectivity check inspects a graph the
					// cell really runs on (replications with GraphSeed 0
					// derive their graphs from the run seed).
					spec.Seed = cfg.Base.Seed + 1
					if err := spec.validate(); err != nil {
						return nil, err
					}
					// Label the graph the cell actually runs on — defaults
					// resolved per n, so two cells sharing {Kind: "torus"}
					// still distinguish their 30x30 from their 32x32.
					label := tp.ResolvedLabel(n)
					// The spec is validated above and the protocol resolved
					// once, so replications go straight to the engine.
					agg, err := harness.ReplicateCtx(ctx, reps,
						func(rctx context.Context, rep uint64) (harness.Metrics, error) {
							s := spec
							s.Seed = cfg.Base.Seed + rep*1e6 + 1
							res, err := p.Run(rctx, s)
							if err != nil {
								return nil, err
							}
							return metricFn(res), nil
						})
					if err != nil {
						return nil, err
					}
					var labels map[string]string
					if len(cfg.Topologies) > 0 {
						labels = map[string]string{"topology": label}
					}
					out.table.AppendLabeled(labels, map[string]float64{
						"n": float64(n), "k": float64(k), "alpha": a,
					}, agg)
					cell := SweepCell{N: n, K: k, Alpha: a, Topology: label,
						Metrics: make(map[string]Summary, len(agg))}
					for name, s := range agg {
						cell.Metrics[name] = summarize(s)
					}
					out.Cells = append(out.Cells, cell)
				}
			}
		}
	}
	return out, nil
}
