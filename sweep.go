package plurality

import (
	"context"
	"fmt"

	"plurality/internal/harness"
	"plurality/internal/stats"
	"plurality/internal/topo"
)

// newWorkerScratch builds the per-worker sampling workspace RunBatch and
// Sweep thread through the engines (see Spec.scratch).
func newWorkerScratch() any { return &topo.Scratch{} }

// RunMany executes reps seeded replications of one protocol in parallel
// (bounded by GOMAXPROCS) and returns the results in replication order:
// result i ran with spec.Seed + i and is identical to the corresponding
// single Run. The first error cancels the remaining replications.
func RunMany(ctx context.Context, name string, spec Spec, reps int) ([]*Result, error) {
	return RunBatch(ctx, name, spec, reps, 0)
}

// RunBatch is RunMany with an explicit worker bound. Replications are
// sharded across a pool of `workers` goroutines (<= 0 means GOMAXPROCS, 1
// runs sequentially — each in-flight replication owns a full simulator, so
// the bound also caps peak memory). Every replication derives its own RNG
// stream from spec.Seed + i, and results are index-addressed, so the
// returned slice is deterministic and bit-identical for every worker count
// and goroutine interleaving. The first error — or ctx cancellation —
// cancels the remaining replications and is returned.
func RunBatch(ctx context.Context, name string, spec Spec, reps, workers int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("plurality: RunBatch with reps=%d", reps)
	}
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, reps)
	err = harness.ForEachWorkersScratch(ctx, reps, workers, newWorkerScratch,
		func(ctx context.Context, i int, ws any) error {
			s := spec
			s.Seed = spec.Seed + uint64(i)
			s.scratch = ws.(*topo.Scratch)
			res, err := p.Run(ctx, s)
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Summary aggregates one metric over the replications of a sweep cell. Its
// JSON field names are the stable wire format of the serving layer.
type Summary struct {
	// N is the number of observations.
	N int `json:"n"`
	// Mean is the sample mean and SE its standard error.
	Mean float64 `json:"mean"`
	SE   float64 `json:"se"`
	// Min and Max bracket the observations.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func summarize(s *stats.Summary) Summary {
	return Summary{N: s.N(), Mean: s.Mean(), SE: s.SE(), Min: s.Min(), Max: s.Max()}
}

// SweepConfig describes a factor-grid sweep of one protocol.
type SweepConfig struct {
	// Protocol is the registered protocol name to run.
	Protocol string
	// Base is the Spec shared by every grid point; the grid axes override
	// its N, K and Alpha per cell, and replication r runs with seed
	// Base.Seed + r·10⁶ + 1 so cells reuse seeds but replications never
	// collide within one cell.
	Base Spec
	// Ns, Ks and Alphas are the grid axes; an empty axis means the single
	// value from Base.
	Ns     []int
	Ks     []int
	Alphas []float64
	// Topologies is the interaction-graph axis; an empty axis means the
	// single Base.Topology. With entries, every grid point runs once per
	// topology and the result table gains a "topology" label column.
	Topologies []TopologySpec
	// Adversaries is the fault-model axis; an empty axis means the single
	// Base.Adversary. With entries, every grid point runs once per
	// adversary and the result table gains an "adversary" label column
	// (AdversarySpec.Label form, e.g. "none" or "crash(f=0.3)"). Like every
	// axis, the aggregated results are worker-count-invariant.
	Adversaries []AdversarySpec
	// Reps is the number of seeded replications per grid point; default 5.
	Reps int
	// Workers bounds the shared worker pool the whole grid is executed on
	// (cells and replications are flattened into one job list, so a slow
	// cell no longer serializes the grid). <= 0 means GOMAXPROCS; 1 runs
	// the sweep sequentially. The aggregated results are bit-identical for
	// every worker count.
	Workers int
	// Metrics optionally maps each Result to named measurements. nil means
	// the standard set: duration, plurality_won (0/1 for plurality victory
	// with full consensus), eps_time (when ε-convergence was reached) and
	// consensus_time (when full consensus was reached).
	Metrics func(*Result) map[string]float64
	// WarmStart, when non-nil, turns the sweep into a warm-started
	// replication study: instead of running cells from scratch, every
	// replication resumes this shared prefix snapshot — replication 0 as
	// the bit-exact continuation, replication r > 0 with divergence label
	// r (ResumeOptions.Perturb) — so the common prefix is simulated once
	// and only the futures fan out. Protocol and Base are taken from the
	// snapshot; the structural axes (Ns, Ks, Alphas, Topologies) must be
	// empty, because a snapshot freezes N, K, the assignment and the
	// graph.
	WarmStart *Snapshot
}

// SweepCell is one grid point's aggregated outcome. Its JSON field names
// are the stable wire format of the serving layer: one marshalled SweepCell
// is one NDJSON line of a pluralityd sweep stream.
type SweepCell struct {
	// N, K and Alpha locate the cell in the grid.
	N     int     `json:"n"`
	K     int     `json:"k"`
	Alpha float64 `json:"alpha"`
	// Topology is the interaction graph of the cell (TopologySpec.Label
	// form, e.g. "complete" or "torus(32x32)").
	Topology string `json:"topology"`
	// Adversary is the fault model of the cell (AdversarySpec.Label form,
	// e.g. "none" or "crash(f=0.3)").
	Adversary string `json:"adversary"`
	// Metrics holds the aggregated measurements of the cell.
	Metrics map[string]Summary `json:"metrics"`
}

// PlannedCell is one grid point of a SweepPlan: its coordinates, the
// display labels of the graph and fault model it actually runs, and the
// validated Spec its replications execute (Seed set per replication through
// SweepPlan.JobSpec).
type PlannedCell struct {
	// N, K and Alpha locate the cell in the grid.
	N, K  int
	Alpha float64
	// Topology and Adversary are the cell's display labels
	// (TopologySpec.ResolvedLabel / AdversarySpec.Label form), identical to
	// the ones the aggregated SweepCell will carry.
	Topology, Adversary string
	// Spec is the cell's run configuration; its Seed is replication 0's
	// (the seed the cell was validated under).
	Spec Spec
}

// SweepPlan is the deterministic flattened form of a SweepConfig: every
// grid cell enumerated and validated up front, in grid order (n-major, then
// k, alpha, topology, adversary). The plan is what both Sweep and the
// serving layer execute — cell c, replication r runs JobSpec(c, r), and the
// job list Cells × Reps is worker-count-invariant, so any executor that
// aggregates replications in order reproduces Sweep's cells exactly.
type SweepPlan struct {
	// Protocol is the registered protocol name the plan runs.
	Protocol string
	// BaseSeed is the sweep's seed offset (SweepConfig.Base.Seed).
	BaseSeed uint64
	// Reps is the number of seeded replications per cell (>= 1).
	Reps int
	// Cells holds one entry per grid point, in grid order.
	Cells []PlannedCell
}

// Jobs returns the total number of (cell, replication) jobs in the plan.
func (p *SweepPlan) Jobs() int { return len(p.Cells) * p.Reps }

// JobSpec returns the exact Spec job (cell, rep) runs: the cell's validated
// Spec with the replication's derived seed. Running it through the plan's
// protocol reproduces the corresponding Sweep replication bit-exactly.
func (p *SweepPlan) JobSpec(cell, rep int) Spec {
	s := p.Cells[cell].Spec
	s.Seed = RepSeed(p.BaseSeed, rep)
	return s
}

// RepSeed returns the run seed of sweep replication rep under base seed
// base: base + rep·10⁶ + 1. Cells deliberately share replication seeds (the
// grid axes distinguish them) while replications within a cell never
// collide for any practical replication count.
func RepSeed(base uint64, rep int) uint64 {
	return base + uint64(rep)*1e6 + 1
}

// Plan enumerates and validates the factor grid of cfg without running
// anything: the deterministic job list a Sweep would execute, exposed so
// other executors (the pluralityd serving layer, custom schedulers) can fan
// the same jobs out and still aggregate cells bit-identically. Warm-start
// configurations have no flattened grid and are rejected.
func (cfg SweepConfig) Plan() (*SweepPlan, error) {
	if cfg.WarmStart != nil {
		return nil, fmt.Errorf("plurality: warm-start sweeps have no flattened plan; run them through Sweep")
	}
	if _, err := Lookup(cfg.Protocol); err != nil {
		return nil, err
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	ns := cfg.Ns
	if len(ns) == 0 {
		ns = []int{cfg.Base.N}
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{cfg.Base.K}
	}
	alphas := cfg.Alphas
	if len(alphas) == 0 {
		alphas = []float64{cfg.Base.Alpha}
	}
	topos := cfg.Topologies
	if len(topos) == 0 {
		topos = []TopologySpec{cfg.Base.Topology}
	}
	advs := cfg.Adversaries
	if len(advs) == 0 {
		advs = []AdversarySpec{cfg.Base.Adversary}
	}
	plan := &SweepPlan{Protocol: cfg.Protocol, BaseSeed: cfg.Base.Seed, Reps: reps}
	for _, n := range ns {
		for _, k := range ks {
			for _, a := range alphas {
				for _, tp := range topos {
					for _, adv := range advs {
						spec := cfg.Base
						spec.N, spec.K, spec.Alpha, spec.Topology = n, k, a, tp
						spec.Adversary = adv
						// Validate with replication 0's actual seed so the
						// random-graph connectivity check inspects a graph the
						// cell really runs on (replications with GraphSeed 0
						// derive their graphs from the run seed).
						spec.Seed = RepSeed(cfg.Base.Seed, 0)
						if err := spec.validate(); err != nil {
							return nil, err
						}
						// Label the graph the cell actually runs on — defaults
						// resolved per n, so two cells sharing {Kind: "torus"}
						// still distinguish their 30x30 from their 32x32.
						plan.Cells = append(plan.Cells, PlannedCell{
							N: n, K: k, Alpha: a,
							Topology:  tp.ResolvedLabel(n),
							Adversary: adv.Label(),
							Spec:      spec,
						})
					}
				}
			}
		}
	}
	return plan, nil
}

// foldMetrics accumulates per-replication measurement maps (in replication
// order) into one stats.Summary per metric name.
func foldMetrics(reps []map[string]float64) map[string]*stats.Summary {
	agg := make(map[string]*stats.Summary)
	for _, m := range reps {
		for name, v := range m {
			s, ok := agg[name]
			if !ok {
				s = &stats.Summary{}
				agg[name] = s
			}
			s.Add(v)
		}
	}
	return agg
}

// AggregateCellMetrics folds one cell's per-replication measurements (in
// replication order) into the aggregated Metrics map a SweepCell carries.
// It is the exact aggregation Sweep applies, exported so an external
// executor of a SweepPlan — the pluralityd serving layer in particular —
// produces cells byte-identical to a local Sweep's.
func AggregateCellMetrics(reps []map[string]float64) map[string]Summary {
	agg := foldMetrics(reps)
	out := make(map[string]Summary, len(agg))
	for name, s := range agg {
		out[name] = summarize(s)
	}
	return out
}

// SweepResult is the outcome of a Sweep, renderable as an aligned ASCII
// table or CSV.
type SweepResult struct {
	// Protocol is the protocol that ran.
	Protocol string
	// Cells holds one entry per grid point, in grid order (n-major, then
	// k, then alpha, then topology, then adversary).
	Cells []SweepCell

	table *harness.Table
}

// Render returns the sweep as an aligned ASCII table.
func (r *SweepResult) Render() string { return r.table.Render() }

// CSV returns the sweep in CSV form (mean, SE and count per metric).
func (r *SweepResult) CSV() string { return r.table.CSV() }

// StandardMetrics is the default per-run measurement set used by Sweep.
func StandardMetrics(res *Result) map[string]float64 {
	m := map[string]float64{
		"duration": res.Duration,
	}
	if res.PluralityWon && res.FullConsensus {
		m["plurality_won"] = 1
	} else {
		m["plurality_won"] = 0
	}
	if res.EpsReached {
		m["eps_time"] = res.EpsTime
	}
	if res.FullConsensus {
		m["consensus_time"] = res.ConsensusTime
	}
	return m
}

// sweepWarmStart is the WarmStart arm of Sweep: one cell, frozen at the
// snapshot's structural parameters, whose replications resume the shared
// prefix with distinct divergence labels instead of running from scratch.
func sweepWarmStart(ctx context.Context, cfg SweepConfig, metricFn func(*Result) map[string]float64, order []string, reps int) (*SweepResult, error) {
	if len(cfg.Ns)+len(cfg.Ks)+len(cfg.Alphas)+len(cfg.Topologies)+len(cfg.Adversaries) > 0 {
		return nil, fmt.Errorf("plurality: warm-start sweeps cannot vary Ns/Ks/Alphas/Topologies/Adversaries — the snapshot freezes them; vary only Reps")
	}
	meta := cfg.WarmStart.Meta()
	if cfg.Protocol != "" && cfg.Protocol != meta.Protocol {
		return nil, fmt.Errorf("plurality: sweep protocol %q != snapshot protocol %q", cfg.Protocol, meta.Protocol)
	}
	spec := meta.Spec
	measurements := make([]map[string]float64, reps)
	err := harness.ForEachWorkers(ctx, reps, cfg.Workers,
		func(rctx context.Context, rep int) error {
			res, err := Resume(rctx, cfg.WarmStart, &ResumeOptions{Perturb: uint64(rep)})
			if err != nil {
				return err
			}
			measurements[rep] = metricFn(res)
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		Protocol: meta.Protocol,
		table: harness.NewTable(fmt.Sprintf("warm-start sweep: %s from t=%g", meta.Protocol, meta.Time),
			[]string{"n", "k", "alpha"}, order),
	}
	agg := foldMetrics(measurements)
	out.table.Append(map[string]float64{
		"n": float64(spec.N), "k": float64(spec.K), "alpha": spec.Alpha,
	}, agg)
	cell := SweepCell{N: spec.N, K: spec.K, Alpha: spec.Alpha,
		Topology:  spec.Topology.ResolvedLabel(spec.N),
		Adversary: spec.Adversary.Label(),
		Metrics:   make(map[string]Summary, len(agg))}
	for name, s := range agg {
		cell.Metrics[name] = summarize(s)
	}
	out.Cells = append(out.Cells, cell)
	return out, nil
}

// Sweep runs one protocol across the factor grid of cfg, replicating every
// grid point with distinct seeds in parallel, and aggregates the metrics
// per cell. It stops at the first error — including ctx cancellation, which
// every underlying run honours promptly. With WarmStart set, the sweep
// instead resumes a shared prefix snapshot per replication (see
// SweepConfig.WarmStart).
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	metricFn := cfg.Metrics
	order := []string{}
	if metricFn == nil {
		metricFn = StandardMetrics
		order = []string{"duration", "eps_time", "consensus_time", "plurality_won"}
	}
	if cfg.WarmStart != nil {
		return sweepWarmStart(ctx, cfg, metricFn, order, reps)
	}
	p, err := Lookup(cfg.Protocol)
	if err != nil {
		return nil, err
	}

	out := &SweepResult{
		Protocol: cfg.Protocol,
		table: harness.NewTable(fmt.Sprintf("sweep: %s", cfg.Protocol),
			[]string{"n", "k", "alpha"}, order),
	}
	if len(cfg.Topologies) > 0 {
		out.table.LabelOrder = append(out.table.LabelOrder, "topology")
	}
	if len(cfg.Adversaries) > 0 {
		out.table.LabelOrder = append(out.table.LabelOrder, "adversary")
	}

	// Pass 1: enumerate and validate every grid cell up front, so a bad
	// cell fails the sweep before any replication burns CPU.
	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	reps = plan.Reps

	// Pass 2: flatten cells × replications into one job list sharded over a
	// single worker pool, so a slow cell no longer serializes the grid.
	// Each job writes its own slot; aggregation below walks the slots in
	// (cell, rep) order, making the output independent of goroutine
	// interleaving.
	metrics := make([]map[string]float64, plan.Jobs())
	err = harness.ForEachWorkersScratch(ctx, len(metrics), cfg.Workers, newWorkerScratch,
		func(rctx context.Context, job int, ws any) error {
			s := plan.JobSpec(job/reps, job%reps)
			s.scratch = ws.(*topo.Scratch)
			res, err := p.Run(rctx, s)
			if err != nil {
				return err
			}
			metrics[job] = metricFn(res)
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Pass 3: aggregate per cell, in grid order.
	for ci, c := range plan.Cells {
		agg := foldMetrics(metrics[ci*reps : (ci+1)*reps])
		var labels map[string]string
		if len(cfg.Topologies) > 0 || len(cfg.Adversaries) > 0 {
			labels = map[string]string{}
			if len(cfg.Topologies) > 0 {
				labels["topology"] = c.Topology
			}
			if len(cfg.Adversaries) > 0 {
				labels["adversary"] = c.Adversary
			}
		}
		out.table.AppendLabeled(labels, map[string]float64{
			"n": float64(c.N), "k": float64(c.K), "alpha": c.Alpha,
		}, agg)
		cell := SweepCell{N: c.N, K: c.K, Alpha: c.Alpha, Topology: c.Topology,
			Adversary: c.Adversary,
			Metrics:   make(map[string]Summary, len(agg))}
		for name, s := range agg {
			cell.Metrics[name] = summarize(s)
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}
