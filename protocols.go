package plurality

import (
	"context"
	"fmt"

	"plurality/internal/baseline"
	"plurality/internal/core/leader"
	"plurality/internal/core/noleader"
	"plurality/internal/core/syncgen"
	"plurality/internal/metrics"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// init registers the built-in protocols: the paper's three algorithms and
// the four classical baseline dynamics.
func init() {
	Register(syncProtocol{})
	Register(leaderProtocol{})
	Register(decentralizedProtocol{})
	for _, rule := range baseline.RuleNames() {
		Register(baselineProtocol{rule: rule})
	}
}

// observe bridges the public Observer to the engines' snapshot callback.
func (s *Spec) observe() func(metrics.Point) {
	if s.Observer == nil {
		return nil
	}
	obs := s.Observer
	return func(p metrics.Point) { obs.Observe(publicPoint(p)) }
}

// engineCheckpoint translates the public checkpoint request (and/or a
// resume payload) into the engines' internal form, wiring the capture sink
// so engine payloads come back wrapped as public Snapshots. captured
// receives the snapshot taken during the run, if any; the stored spec has
// its runtime-only fields (Observer, Checkpoint) cleared.
func engineCheckpoint(name string, spec Spec, restore []byte, perturb uint64, captured **Snapshot) *snap.Checkpoint {
	cs := spec.Checkpoint
	if cs.SnapshotAt <= 0 && restore == nil {
		return nil
	}
	ck := &snap.Checkpoint{Restore: restore, Perturb: perturb}
	if cs.SnapshotAt > 0 {
		metaSpec := spec
		metaSpec.Observer = nil
		metaSpec.Checkpoint = CheckpointSpec{}
		ck.At = cs.SnapshotAt
		ck.Halt = cs.Halt
		out := captured
		sink := cs.Sink
		ck.Sink = func(state []byte, at float64, events uint64) {
			sn := &Snapshot{meta: SnapshotMeta{
				FormatVersion: SnapshotFormatVersion,
				Protocol:      name,
				Time:          at,
				Events:        events,
				Spec:          metaSpec,
			}, payload: state}
			*out = sn
			if sink != nil {
				sink(sn)
			}
		}
	}
	return ck
}

// syncProtocol is Algorithm 1: synchronous generations with adaptive or
// theoretical two-choices scheduling.
type syncProtocol struct{}

func (syncProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:           "sync",
		Family:         "generation",
		TopologyAware:  true,
		Checkpointable: true,
		Description:    "synchronous generation protocol (Algorithm 1)",
	}
}

func (p syncProtocol) Run(ctx context.Context, spec Spec) (*Result, error) {
	return p.run(ctx, spec, nil, 0)
}

// ResumeRun implements Resumer.
func (p syncProtocol) ResumeRun(ctx context.Context, spec Spec, state []byte, perturb uint64) (*Result, error) {
	return p.run(ctx, spec, state, perturb)
}

func (syncProtocol) run(ctx context.Context, spec Spec, restore []byte, perturb uint64) (*Result, error) {
	if spec.Adversary.Kind == AdversaryDelay {
		return nil, fmt.Errorf("plurality: protocol %q is round-based; the delay adversary needs message latency (try crash, drop or byzantine)", "sync")
	}
	if spec.Shards > 1 {
		return nil, fmt.Errorf("plurality: protocol %q is round-based; sharded execution needs the event ladder (only %q and %q support Shards > 1)", "sync", "leader", "decentralized")
	}
	assign, err := toInternalAssignment(spec.Assignment, spec.N, spec.K)
	if err != nil {
		return nil, err
	}
	tp, err := spec.Topology.build(spec.N, spec.Seed)
	if err != nil {
		return nil, err
	}
	sched := syncgen.ScheduleAdaptive
	if spec.Sync.TheoreticalSchedule {
		sched = syncgen.ScheduleTheoretical
	}
	var captured *Snapshot
	res, err := syncgen.Run(syncgen.Config{
		N: spec.N, K: spec.K, Alpha: spec.Alpha, Assignment: assign,
		Gamma: spec.Sync.Gamma, Schedule: sched, MaxSteps: spec.MaxSteps,
		Seed: spec.Seed, Eps: spec.Eps, RecordEvery: spec.recordEveryRounds(),
		Topo: tp, Scratch: spec.scratch,
		Adv: spec.Adversary.resolveFor(spec.N, spec.Seed),
		Ctx: ctx, Observe: spec.observe(), DiscardTrajectory: spec.DiscardTrajectory,
		Ckpt: engineCheckpoint("sync", spec, restore, perturb, &captured),
	})
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"generations":       float64(len(res.Generations)),
		"two_choices_steps": float64(len(res.TwoChoicesSteps)),
	}
	spec.Topology.topoStats(tp, extra)
	spec.Adversary.advStats(res.AdvCounters, extra)
	out := convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		float64(res.Steps), !res.Outcome.FullConsensus, extra)
	out.Snapshot = captured
	return out, nil
}

// leaderProtocol is Algorithms 2 and 3: the asynchronous protocol with a
// designated leader.
type leaderProtocol struct{}

func (leaderProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:           "leader",
		Family:         "generation",
		Async:          true,
		TopologyAware:  true,
		Checkpointable: true,
		Description:    "asynchronous single-leader protocol (Algorithms 2-3)",
	}
}

func (p leaderProtocol) Run(ctx context.Context, spec Spec) (*Result, error) {
	return p.run(ctx, spec, nil, 0)
}

// ResumeRun implements Resumer.
func (p leaderProtocol) ResumeRun(ctx context.Context, spec Spec, state []byte, perturb uint64) (*Result, error) {
	return p.run(ctx, spec, state, perturb)
}

func (leaderProtocol) run(ctx context.Context, spec Spec, restore []byte, perturb uint64) (*Result, error) {
	assign, err := toInternalAssignment(spec.Assignment, spec.N, spec.K)
	if err != nil {
		return nil, err
	}
	lat, err := spec.Latency.build()
	if err != nil {
		return nil, err
	}
	tp, err := spec.Topology.build(spec.N, spec.Seed)
	if err != nil {
		return nil, err
	}
	var captured *Snapshot
	res, err := leader.Run(leader.Config{
		N: spec.N, K: spec.K, Alpha: spec.Alpha, Assignment: assign,
		Latency: lat, Topo: tp, Scratch: spec.scratch, MaxTime: spec.MaxTime, Seed: spec.Seed,
		Eps: spec.Eps, RecordEvery: spec.RecordEvery, Shards: spec.Shards,
		Adv: spec.Adversary.resolveFor(spec.N, spec.Seed),
		Ctx: ctx, Observe: spec.observe(), DiscardTrajectory: spec.DiscardTrajectory,
		Ckpt: engineCheckpoint("leader", spec, restore, perturb, &captured),
	})
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"c1":     res.C1,
		"events": float64(res.Events),
		"gstar":  float64(res.GStar),
		"phases": float64(len(res.PhaseLog)),
	}
	if spec.Shards > 1 {
		extra["shards"] = float64(spec.Shards)
	}
	spec.Topology.topoStats(tp, extra)
	spec.Adversary.advStats(res.AdvCounters, extra)
	out := convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		res.EndTime, res.TimedOut, extra)
	out.Snapshot = captured
	return out, nil
}

// decentralizedProtocol is Algorithms 4 and 5: clustering (§4.1) followed
// by consensus coordinated by the cluster leaders.
type decentralizedProtocol struct{}

func (decentralizedProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:           "decentralized",
		Family:         "generation",
		Async:          true,
		TopologyAware:  true,
		Checkpointable: true,
		Description:    "fully decentralized protocol: clustering + consensus (Algorithms 4-5)",
	}
}

func (p decentralizedProtocol) Run(ctx context.Context, spec Spec) (*Result, error) {
	return p.run(ctx, spec, nil, 0)
}

// ResumeRun implements Resumer. The snapshot embeds the finished
// clustering, so the resumed run skips formation entirely.
func (p decentralizedProtocol) ResumeRun(ctx context.Context, spec Spec, state []byte, perturb uint64) (*Result, error) {
	return p.run(ctx, spec, state, perturb)
}

func (decentralizedProtocol) run(ctx context.Context, spec Spec, restore []byte, perturb uint64) (*Result, error) {
	assign, err := toInternalAssignment(spec.Assignment, spec.N, spec.K)
	if err != nil {
		return nil, err
	}
	lat, err := spec.Latency.build()
	if err != nil {
		return nil, err
	}
	tp, err := spec.Topology.build(spec.N, spec.Seed)
	if err != nil {
		return nil, err
	}
	var captured *Snapshot
	c := noleader.Config{
		N: spec.N, K: spec.K, Alpha: spec.Alpha, Assignment: assign,
		Latency: lat, Topo: tp, Scratch: spec.scratch, MaxTime: spec.MaxTime, Seed: spec.Seed,
		Eps: spec.Eps, RecordEvery: spec.RecordEvery, Shards: spec.Shards,
		Adv: spec.Adversary.resolveFor(spec.N, spec.Seed),
		Ctx: ctx, Observe: spec.observe(), DiscardTrajectory: spec.DiscardTrajectory,
		Ckpt: engineCheckpoint("decentralized", spec, restore, perturb, &captured),
	}
	c.Cluster.TargetSize = spec.Async.ClusterTargetSize
	res, err := noleader.Run(c)
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"c1":                 res.C1,
		"events":             float64(res.Events),
		"gstar":              float64(res.GStar),
		"clustering_time":    res.ClusteringTime,
		"participating_frac": res.Clustering.ParticipatingFrac(),
		"leaders":            float64(len(res.Clustering.ParticipatingLeaders())),
	}
	if spec.Shards > 1 {
		extra["shards"] = float64(spec.Shards)
	}
	spec.Topology.topoStats(tp, extra)
	spec.Adversary.advStats(res.AdvCounters, extra)
	out := convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		res.EndTime, res.TimedOut, extra)
	out.Snapshot = captured
	return out, nil
}

// baselineProtocol wraps one classical dynamics rule from the paper's
// related-work section.
type baselineProtocol struct {
	rule string
}

func (p baselineProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:           p.rule,
		Family:         "baseline",
		TopologyAware:  true,
		Checkpointable: true,
		Description:    "classical " + p.rule + " dynamics (§1.1 related work)",
	}
}

func (p baselineProtocol) Run(ctx context.Context, spec Spec) (*Result, error) {
	return p.run(ctx, spec, nil, 0)
}

// ResumeRun implements Resumer.
func (p baselineProtocol) ResumeRun(ctx context.Context, spec Spec, state []byte, perturb uint64) (*Result, error) {
	return p.run(ctx, spec, state, perturb)
}

func (p baselineProtocol) run(ctx context.Context, spec Spec, restore []byte, perturb uint64) (*Result, error) {
	if spec.Adversary.Kind == AdversaryDelay {
		return nil, fmt.Errorf("plurality: protocol %q is round-based; the delay adversary needs message latency (try crash, drop or byzantine)", p.rule)
	}
	if spec.Shards > 1 {
		return nil, fmt.Errorf("plurality: protocol %q is round-based; sharded execution needs the event ladder (only %q and %q support Shards > 1)", p.rule, "leader", "decentralized")
	}
	assign, err := toInternalAssignment(spec.Assignment, spec.N, spec.K)
	if err != nil {
		return nil, err
	}
	r, err := baseline.NewRule(p.rule, xrand.New(spec.Seed).SplitNamed("rule"))
	if err != nil {
		return nil, err
	}
	tp, err := spec.Topology.build(spec.N, spec.Seed)
	if err != nil {
		return nil, err
	}
	var captured *Snapshot
	bcfg := baseline.Config{
		N: spec.N, K: spec.K, Alpha: spec.Alpha, Assignment: assign,
		MaxRounds: spec.MaxSteps, Seed: spec.Seed, Eps: spec.Eps,
		RecordEvery: spec.recordEveryRounds(), Topo: tp, Scratch: spec.scratch,
		Adv: spec.Adversary.resolveFor(spec.N, spec.Seed),
		Ctx: ctx, Observe: spec.observe(), DiscardTrajectory: spec.DiscardTrajectory,
		Ckpt: engineCheckpoint(p.rule, spec, restore, perturb, &captured),
	}
	var res *baseline.Result
	if spec.Baseline.Sequential {
		res, err = baseline.RunSequential(r, bcfg)
	} else {
		res, err = baseline.RunSync(r, bcfg)
	}
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{"rounds": float64(res.Rounds)}
	spec.Topology.topoStats(tp, extra)
	spec.Adversary.advStats(res.AdvCounters, extra)
	out := convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		float64(res.Rounds), !res.Outcome.FullConsensus, extra)
	out.Snapshot = captured
	return out, nil
}
