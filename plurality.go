package plurality

import (
	"math"

	"plurality/internal/baseline"
	"plurality/internal/core/leader"
	"plurality/internal/core/noleader"
	"plurality/internal/core/syncgen"
	"plurality/internal/xrand"
)

// SyncConfig parametrizes the synchronous protocol (Algorithm 1).
type SyncConfig struct {
	// N is the number of nodes (>= 2) and K the number of opinions (>= 1).
	N, K int
	// Alpha is the planted initial bias used when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions, values in [0, K).
	Assignment []int
	// Gamma is the generation-density threshold γ; default 0.5.
	Gamma float64
	// TheoreticalSchedule selects the paper's predefined two-choices times
	// {t_i} instead of the adaptive density trigger.
	TheoreticalSchedule bool
	// MaxSteps bounds the run; 0 means an automatic generous horizon.
	MaxSteps int
	// Seed drives all randomness.
	Seed uint64
	// Eps defines ε-convergence reporting; 0 means 1/log² n.
	Eps float64
	// RecordEvery sets the snapshot interval in rounds; 0 means 1.
	RecordEvery int
}

// RunSynchronous executes the synchronous generation protocol.
func RunSynchronous(cfg SyncConfig) (*Result, error) {
	assign, err := toInternalAssignment(cfg.Assignment, cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	sched := syncgen.ScheduleAdaptive
	if cfg.TheoreticalSchedule {
		sched = syncgen.ScheduleTheoretical
	}
	res, err := syncgen.Run(syncgen.Config{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: assign,
		Gamma: cfg.Gamma, Schedule: sched, MaxSteps: cfg.MaxSteps,
		Seed: cfg.Seed, Eps: cfg.Eps, RecordEvery: cfg.RecordEvery,
	})
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"generations":       float64(len(res.Generations)),
		"two_choices_steps": float64(len(res.TwoChoicesSteps)),
	}
	return convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		float64(res.Steps), !res.Outcome.FullConsensus, extra), nil
}

// AsyncConfig parametrizes the asynchronous protocols (single-leader and
// decentralized).
type AsyncConfig struct {
	// N is the number of nodes and K the number of opinions.
	N, K int
	// Alpha is the planted initial bias used when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions, values in [0, K).
	Assignment []int
	// Latency describes the channel-establishment distribution T2.
	Latency LatencySpec
	// MaxTime bounds the run in virtual time steps; 0 means automatic.
	MaxTime float64
	// Seed drives all randomness.
	Seed uint64
	// Eps defines ε-convergence reporting; 0 means 1/log² n.
	Eps float64
	// RecordEvery sets the snapshot interval in time steps; 0 means one
	// snapshot per time unit.
	RecordEvery float64
	// ClusterTargetSize overrides the decentralized protocol's cluster
	// size knob (ignored by RunSingleLeader); 0 means automatic.
	ClusterTargetSize int
}

// RunSingleLeader executes the asynchronous protocol with a designated
// leader (Algorithms 2 and 3).
func RunSingleLeader(cfg AsyncConfig) (*Result, error) {
	assign, err := toInternalAssignment(cfg.Assignment, cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	lat, err := cfg.Latency.build()
	if err != nil {
		return nil, err
	}
	res, err := leader.Run(leader.Config{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: assign,
		Latency: lat, MaxTime: cfg.MaxTime, Seed: cfg.Seed,
		Eps: cfg.Eps, RecordEvery: cfg.RecordEvery,
	})
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"c1":     res.C1,
		"events": float64(res.Events),
		"gstar":  float64(res.GStar),
		"phases": float64(len(res.PhaseLog)),
	}
	return convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		res.EndTime, res.TimedOut, extra), nil
}

// RunDecentralized executes the fully decentralized protocol: clustering
// (§4.1), then consensus coordinated by the cluster leaders (Algorithms 4
// and 5). The reported times cover the consensus phase; the clustering time
// is in Stats["clustering_time"].
func RunDecentralized(cfg AsyncConfig) (*Result, error) {
	assign, err := toInternalAssignment(cfg.Assignment, cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	lat, err := cfg.Latency.build()
	if err != nil {
		return nil, err
	}
	c := noleader.Config{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: assign,
		Latency: lat, MaxTime: cfg.MaxTime, Seed: cfg.Seed,
		Eps: cfg.Eps, RecordEvery: cfg.RecordEvery,
	}
	c.Cluster.TargetSize = cfg.ClusterTargetSize
	res, err := noleader.Run(c)
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{
		"c1":                 res.C1,
		"events":             float64(res.Events),
		"gstar":              float64(res.GStar),
		"clustering_time":    res.ClusteringTime,
		"participating_frac": res.Clustering.ParticipatingFrac(),
		"leaders":            float64(len(res.Clustering.ParticipatingLeaders())),
	}
	return convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		res.EndTime, res.TimedOut, extra), nil
}

// BaselineConfig parametrizes a baseline dynamics run.
type BaselineConfig struct {
	// N, K, Alpha, Assignment, Seed, Eps as in SyncConfig.
	N, K       int
	Alpha      float64
	Assignment []int
	Seed       uint64
	Eps        float64
	// MaxRounds bounds the run; 0 means automatic.
	MaxRounds int
	// Sequential uses the population-protocol scheduler (one interaction
	// at a time, time in parallel rounds) instead of synchronous rounds.
	Sequential bool
	// RecordEvery sets the snapshot interval in rounds; 0 means 1.
	RecordEvery int
}

// Baselines lists the available baseline rules: "pull-voting",
// "two-choices", "3-majority", "undecided-state".
func Baselines() []string { return baseline.RuleNames() }

// RunBaseline executes one of the classical dynamics from the paper's
// related-work section under the given configuration.
func RunBaseline(rule string, cfg BaselineConfig) (*Result, error) {
	assign, err := toInternalAssignment(cfg.Assignment, cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	r, err := baseline.NewRule(rule, xrand.New(cfg.Seed).SplitNamed("rule"))
	if err != nil {
		return nil, err
	}
	bcfg := baseline.Config{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: assign,
		MaxRounds: cfg.MaxRounds, Seed: cfg.Seed, Eps: cfg.Eps,
		RecordEvery: cfg.RecordEvery,
	}
	var res *baseline.Result
	if cfg.Sequential {
		res, err = baseline.RunSequential(r, bcfg)
	} else {
		res, err = baseline.RunSync(r, bcfg)
	}
	if err != nil {
		return nil, err
	}
	extra := map[string]float64{"rounds": float64(res.Rounds)}
	return convertResult(res.Outcome, res.Trajectory, res.FinalCounts,
		float64(res.Rounds), !res.Outcome.FullConsensus, extra), nil
}

// MinTheoremBias returns the smallest initial bias Theorem 1 admits for n
// nodes and k opinions: 1 + (k·log₂ n/√n)·log₂ k.
func MinTheoremBias(n, k int) float64 {
	if n < 2 || k < 2 {
		return 1
	}
	return minBias(n, k)
}

func minBias(n, k int) float64 {
	return 1 + float64(k)*math.Log2(float64(n))/math.Sqrt(float64(n))*math.Log2(float64(k))
}

// EstimateTimeUnit returns the paper's C1 — the number of time steps per
// time unit, F⁻¹(0.9) of the waiting time T3 — for the given latency spec,
// estimated deterministically from seed. Useful for interpreting the
// asynchronous Result times in time units.
func EstimateTimeUnit(spec LatencySpec, seed uint64) (float64, error) {
	lat, err := spec.build()
	if err != nil {
		return 0, err
	}
	return leader.EstimateC1(lat, seed), nil
}
