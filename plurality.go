package plurality

import (
	"context"
	"math"

	"plurality/internal/baseline"
	"plurality/internal/core/leader"
)

// This file keeps the pre-registry entry points alive as thin wrappers over
// Run. New code should use Run(ctx, name, spec) with the unified Spec; the
// wrappers exist so existing callers keep compiling and keep producing
// byte-identical results for the same seed.

// SyncConfig parametrizes the synchronous protocol (Algorithm 1).
//
// Deprecated: use Spec with SyncOptions and Run(ctx, "sync", spec).
type SyncConfig struct {
	// N is the number of nodes (>= 2) and K the number of opinions (>= 1).
	N, K int
	// Alpha is the planted initial bias used when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions, values in [0, K).
	Assignment []int
	// Gamma is the generation-density threshold γ; default 0.5.
	Gamma float64
	// TheoreticalSchedule selects the paper's predefined two-choices times
	// {t_i} instead of the adaptive density trigger.
	TheoreticalSchedule bool
	// MaxSteps bounds the run; 0 means an automatic generous horizon.
	MaxSteps int
	// Seed drives all randomness.
	Seed uint64
	// Eps defines ε-convergence reporting; 0 means 1/log² n.
	Eps float64
	// RecordEvery sets the snapshot interval in rounds; 0 means 1.
	RecordEvery int
}

// RunSynchronous executes the synchronous generation protocol.
//
// Deprecated: use Run(ctx, "sync", spec).
func RunSynchronous(cfg SyncConfig) (*Result, error) {
	return Run(context.Background(), "sync", Spec{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: cfg.Assignment,
		Seed: cfg.Seed, Eps: cfg.Eps, MaxSteps: cfg.MaxSteps,
		RecordEvery: float64(cfg.RecordEvery),
		Sync: SyncOptions{
			Gamma:               cfg.Gamma,
			TheoreticalSchedule: cfg.TheoreticalSchedule,
		},
	})
}

// AsyncConfig parametrizes the asynchronous protocols (single-leader and
// decentralized).
//
// Deprecated: use Spec with AsyncOptions and Run(ctx, "leader", spec) or
// Run(ctx, "decentralized", spec).
type AsyncConfig struct {
	// N is the number of nodes and K the number of opinions.
	N, K int
	// Alpha is the planted initial bias used when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions, values in [0, K).
	Assignment []int
	// Latency describes the channel-establishment distribution T2.
	Latency LatencySpec
	// MaxTime bounds the run in virtual time steps; 0 means automatic.
	MaxTime float64
	// Seed drives all randomness.
	Seed uint64
	// Eps defines ε-convergence reporting; 0 means 1/log² n.
	Eps float64
	// RecordEvery sets the snapshot interval in time steps; 0 means one
	// snapshot per time unit.
	RecordEvery float64
	// ClusterTargetSize overrides the decentralized protocol's cluster
	// size knob (ignored by RunSingleLeader); 0 means automatic.
	ClusterTargetSize int
}

// spec converts the legacy async config to the unified Spec.
func (cfg AsyncConfig) spec() Spec {
	return Spec{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: cfg.Assignment,
		Seed: cfg.Seed, Eps: cfg.Eps, MaxTime: cfg.MaxTime,
		RecordEvery: cfg.RecordEvery, Latency: cfg.Latency,
		Async: AsyncOptions{ClusterTargetSize: cfg.ClusterTargetSize},
	}
}

// RunSingleLeader executes the asynchronous protocol with a designated
// leader (Algorithms 2 and 3).
//
// Deprecated: use Run(ctx, "leader", spec).
func RunSingleLeader(cfg AsyncConfig) (*Result, error) {
	return Run(context.Background(), "leader", cfg.spec())
}

// RunDecentralized executes the fully decentralized protocol: clustering
// (§4.1), then consensus coordinated by the cluster leaders (Algorithms 4
// and 5). The reported times cover the consensus phase; the clustering time
// is in Stats["clustering_time"].
//
// Deprecated: use Run(ctx, "decentralized", spec).
func RunDecentralized(cfg AsyncConfig) (*Result, error) {
	return Run(context.Background(), "decentralized", cfg.spec())
}

// BaselineConfig parametrizes a baseline dynamics run.
//
// Deprecated: use Spec with BaselineOptions and Run(ctx, rule, spec).
type BaselineConfig struct {
	// N, K, Alpha, Assignment, Seed, Eps as in SyncConfig.
	N, K       int
	Alpha      float64
	Assignment []int
	Seed       uint64
	Eps        float64
	// MaxRounds bounds the run; 0 means automatic.
	MaxRounds int
	// Sequential uses the population-protocol scheduler (one interaction
	// at a time, time in parallel rounds) instead of synchronous rounds.
	Sequential bool
	// RecordEvery sets the snapshot interval in rounds; 0 means 1.
	RecordEvery int
}

// Baselines lists the available baseline rules: "pull-voting",
// "two-choices", "3-majority", "undecided-state". Each is also a registered
// protocol name accepted by Run.
func Baselines() []string { return baseline.RuleNames() }

// RunBaseline executes one of the classical dynamics from the paper's
// related-work section under the given configuration.
//
// Deprecated: use Run(ctx, rule, spec); every baseline rule is a registered
// protocol.
func RunBaseline(rule string, cfg BaselineConfig) (*Result, error) {
	return Run(context.Background(), rule, Spec{
		N: cfg.N, K: cfg.K, Alpha: cfg.Alpha, Assignment: cfg.Assignment,
		Seed: cfg.Seed, Eps: cfg.Eps, MaxSteps: cfg.MaxRounds,
		RecordEvery: float64(cfg.RecordEvery),
		Baseline:    BaselineOptions{Sequential: cfg.Sequential},
	})
}

// MinTheoremBias returns the smallest initial bias Theorem 1 admits for n
// nodes and k opinions: 1 + (k·log₂ n/√n)·log₂ k.
func MinTheoremBias(n, k int) float64 {
	if n < 2 || k < 2 {
		return 1
	}
	return minBias(n, k)
}

func minBias(n, k int) float64 {
	return 1 + float64(k)*math.Log2(float64(n))/math.Sqrt(float64(n))*math.Log2(float64(k))
}

// EstimateTimeUnit returns the paper's C1 — the number of time steps per
// time unit, F⁻¹(0.9) of the waiting time T3 — for the given latency spec,
// estimated deterministically from seed. Useful for interpreting the
// asynchronous Result times in time units.
func EstimateTimeUnit(spec LatencySpec, seed uint64) (float64, error) {
	lat, err := spec.build()
	if err != nil {
		return 0, err
	}
	return leader.EstimateC1(lat, seed), nil
}
