package plurality

import (
	"fmt"
	"math"

	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// The registered topology kinds, valid values of TopologySpec.Kind. The
// paper's analysis covers the complete graph only; the other kinds run the
// same dynamics on restricted interaction graphs, the regime of the
// general-graph related work (3-majority with many opinions, two-choices
// k-party voting).
const (
	// TopologyComplete is the complete graph — the paper's model and the
	// default. It is the zero-allocation fast path: runs are byte-identical
	// to the pre-topology code for the same seed.
	TopologyComplete = "complete"
	// TopologyRing is the circulant graph where v neighbors v±1 … v±Width.
	TopologyRing = "ring"
	// TopologyTorus is the Rows×Cols 2-D grid with wraparound.
	TopologyTorus = "torus"
	// TopologyRandomRegular is a seeded random Degree-regular graph.
	TopologyRandomRegular = "random-regular"
	// TopologyErdosRenyi is a seeded G(n, P) sample, required connected.
	TopologyErdosRenyi = "erdos-renyi"
)

// Topologies returns the supported topology kinds in documentation order.
func Topologies() []string {
	return []string{TopologyComplete, TopologyRing, TopologyTorus,
		TopologyRandomRegular, TopologyErdosRenyi}
}

// TopologySpec selects the interaction graph of a run: which nodes a node
// may sample when the protocol says "contact a random other node". The zero
// value is the complete graph, reproducing the paper's model (and the
// pre-topology results) exactly. Fields not used by the selected Kind are
// ignored.
type TopologySpec struct {
	// Kind names the graph family; "" means TopologyComplete.
	Kind string `json:"kind,omitempty"`
	// Width is the ring half-width (neighbors v±1 … v±Width); 0 means 1,
	// the plain cycle. Requires N >= 2·Width+1.
	Width int `json:"width,omitempty"`
	// Rows and Cols are the torus dimensions; both 0 means the most
	// near-square factorization of N with both sides >= 3 (an error if N
	// has none, e.g. primes), and setting exactly one infers the other
	// from N. When both are set, Rows·Cols must equal N.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Degree is the random-regular degree; 0 means 4. N·Degree must be
	// even and 2 <= Degree < N.
	Degree int `json:"degree,omitempty"`
	// P is the Erdős–Rényi edge probability in (0, 1]; 0 means
	// min(1, 2·ln(N)/N), comfortably above the ln(N)/N connectivity
	// threshold. The sampled graph must be connected or the run errors.
	P float64 `json:"p,omitempty"`
	// GraphSeed seeds the construction of the random graph kinds; 0
	// derives the seed from Spec.Seed, so replications with distinct run
	// seeds draw distinct graphs (annealed averaging). Set it to pin one
	// graph across replications (quenched).
	GraphSeed uint64 `json:"graph_seed,omitempty"`
}

// Label renders the spec compactly for tables and sweep axes, e.g.
// "complete", "ring(w=2)", "torus(32x32)", "random-regular(d=4)",
// "erdos-renyi(p=0.01)". Knobs still at their zero value are omitted; pass
// the spec through Resolve first to label the graph a run actually uses.
func (t TopologySpec) Label() string {
	switch t.Kind {
	case "", TopologyComplete:
		return TopologyComplete
	case TopologyRing:
		if t.Width > 0 {
			return fmt.Sprintf("ring(w=%d)", t.Width)
		}
		return "ring"
	case TopologyTorus:
		if t.Rows > 0 || t.Cols > 0 {
			return fmt.Sprintf("torus(%dx%d)", t.Rows, t.Cols)
		}
		return "torus"
	case TopologyRandomRegular:
		if t.Degree > 0 {
			return fmt.Sprintf("random-regular(d=%d)", t.Degree)
		}
		return "random-regular"
	case TopologyErdosRenyi:
		if t.P > 0 {
			return fmt.Sprintf("erdos-renyi(p=%.4g)", t.P)
		}
		return "erdos-renyi"
	default:
		return t.Kind
	}
}

// ResolvedLabel is Label after Resolve: the display name of the graph a run
// on n nodes actually uses, e.g. "torus(30x30)" for a default-dims torus at
// n = 900. When the spec cannot be resolved it falls back to the unresolved
// Label (the caller is about to see the build error anyway).
func (t TopologySpec) ResolvedLabel(n int) string {
	if r, err := t.Resolve(n); err == nil {
		return r.Label()
	}
	return t.Label()
}

// Resolve returns a copy with every Kind-specific default filled in for n
// nodes — Width 1, near-square torus dims, Degree 4, P = min(1, 2·ln n/n) —
// so callers can inspect (and Label) the graph a run will actually use.
// This is the single place defaults are decided; build constructs from the
// resolved values verbatim.
func (t TopologySpec) Resolve(n int) (TopologySpec, error) {
	if n < 2 {
		return t, fmt.Errorf("plurality: topology needs N >= 2, got %d", n)
	}
	switch t.Kind {
	case "", TopologyComplete:
	case TopologyRing:
		if t.Width == 0 {
			t.Width = 1
		}
	case TopologyTorus:
		switch {
		case t.Rows == 0 && t.Cols == 0:
			var ok bool
			t.Rows, t.Cols, ok = topo.NearSquareDims(n)
			if !ok {
				return t, fmt.Errorf("plurality: N = %d has no torus factorization with both sides >= 3; pick N with such a divisor pair or set Rows/Cols", n)
			}
		case t.Cols == 0: // one dimension given: infer the other from N
			if t.Rows <= 0 || n%t.Rows != 0 {
				return t, fmt.Errorf("plurality: torus rows %d does not divide N %d", t.Rows, n)
			}
			t.Cols = n / t.Rows
		case t.Rows == 0:
			if t.Cols <= 0 || n%t.Cols != 0 {
				return t, fmt.Errorf("plurality: torus cols %d does not divide N %d", t.Cols, n)
			}
			t.Rows = n / t.Cols
		}
		if t.Rows*t.Cols != n {
			return t, fmt.Errorf("plurality: torus dims %dx%d = %d != N %d", t.Rows, t.Cols, t.Rows*t.Cols, n)
		}
	case TopologyRandomRegular:
		if t.Degree == 0 {
			t.Degree = 4
		}
	case TopologyErdosRenyi:
		if t.P == 0 {
			t.P = math.Min(1, 2*math.Log(float64(n))/float64(n))
		}
	default:
		return t, fmt.Errorf("plurality: unknown topology kind %q (have %v)", t.Kind, Topologies())
	}
	return t, nil
}

// build constructs the sampler for n nodes. The random graph kinds derive
// their construction seed from runSeed unless GraphSeed pins it; the
// derivation uses a dedicated substream so engine randomness is untouched.
// Connectivity of the random kinds is checked here — and therefore at
// validation time, since Spec.validate builds and discards the sampler the
// same way it builds the latency distribution.
func (t TopologySpec) build(n int, runSeed uint64) (topo.Sampler, error) {
	t, err := t.Resolve(n)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case "", TopologyComplete:
		return topo.NewComplete(n), nil
	case TopologyRing:
		g, err := topo.NewRing(n, t.Width)
		if err != nil {
			return nil, fmt.Errorf("plurality: %w", err)
		}
		return g, nil
	case TopologyTorus:
		g, err := topo.NewTorus(t.Rows, t.Cols)
		if err != nil {
			return nil, fmt.Errorf("plurality: %w", err)
		}
		return g, nil
	case TopologyRandomRegular:
		g, err := topo.NewRandomRegular(n, t.Degree, t.graphSeed(runSeed))
		if err != nil {
			return nil, fmt.Errorf("plurality: %w", err)
		}
		return g, nil
	default: // TopologyErdosRenyi; Resolve rejected every other kind
		g, err := topo.NewErdosRenyi(n, t.P, t.graphSeed(runSeed))
		if err != nil {
			return nil, fmt.Errorf("plurality: %w", err)
		}
		return g, nil
	}
}

// graphSeed resolves the construction seed for the random graph kinds.
func (t TopologySpec) graphSeed(runSeed uint64) uint64 {
	if t.GraphSeed != 0 {
		return t.GraphSeed
	}
	return xrand.New(runSeed).SplitNamed("topology").Uint64()
}

// topoStats appends the topology diagnostics to a protocol's Stats map for
// non-complete graphs: node count and average degree (Sampler.Degree/Size).
// The complete graph adds nothing, keeping default results byte-identical
// to the pre-topology code.
func (t TopologySpec) topoStats(tp topo.Sampler, extra map[string]float64) {
	switch t.Kind {
	case "", TopologyComplete:
		return
	}
	extra["topology_nodes"] = float64(tp.Size())
	extra["topology_avg_degree"] = topo.AvgDegree(tp)
}
